#include "sim/social_force.h"

#include <algorithm>
#include <cmath>

#include "tensor/status.h"

namespace adaptraj {
namespace sim {

namespace {

constexpr float kWallStrength = 2.0f;
constexpr float kWallRange = 0.3f;
constexpr float kArrivalRadius = 0.6f;
constexpr float kNeighborCutoffFactor = 6.0f;  // in units of repulsion_range

}  // namespace

int Scene::ActiveAgentsAt(int step) const {
  int count = 0;
  for (const AgentTrack& t : tracks) {
    if (step >= t.start_step &&
        step < t.start_step + static_cast<int>(t.points.size())) {
      ++count;
    }
  }
  return count;
}

SocialForceSimulator::SocialForceSimulator(const DomainSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  ADAPTRAJ_CHECK_MSG(spec_.substeps >= 1, "substeps must be positive");
  ADAPTRAJ_CHECK_MSG(spec_.dt > 0.0f, "dt must be positive");
}

float SocialForceSimulator::SampleTargetCount() {
  float c = rng_.Normal(spec_.mean_agents, spec_.std_agents);
  return std::max(2.0f, c);
}

void SocialForceSimulator::SampleRoute(Vec2* pos, Vec2* goal) {
  const float w = spec_.world_width;
  const float h = spec_.world_height;
  const bool cross = rng_.Bernoulli(spec_.cross_flow_prob);
  const float jitter = rng_.Normal(0.0f, spec_.flow_angle_jitter);

  auto route_along_x = [&]() {
    const bool left_to_right = rng_.Bernoulli(0.5);
    const float y0 = rng_.Uniform(0.15f * h, 0.85f * h);
    *pos = {left_to_right ? 0.2f : w - 0.2f, y0};
    Vec2 dir = Vec2(left_to_right ? 1.0f : -1.0f, 0.0f).Rotated(jitter);
    *goal = *pos + dir * (w * 1.2f);
  };
  auto route_along_y = [&]() {
    const bool bottom_to_top = rng_.Bernoulli(0.5);
    const float x0 = rng_.Uniform(0.15f * w, 0.85f * w);
    *pos = {x0, bottom_to_top ? 0.2f : h - 0.2f};
    Vec2 dir = Vec2(0.0f, bottom_to_top ? 1.0f : -1.0f).Rotated(jitter);
    *goal = *pos + dir * (h * 1.2f);
  };

  switch (spec_.flow) {
    case FlowPattern::kBidirectionalX:
      if (cross) {
        route_along_y();
      } else {
        route_along_x();
      }
      break;
    case FlowPattern::kCorridorY:
      route_along_y();
      break;
    case FlowPattern::kCampusMixed:
      if (cross) {
        route_along_y();
      } else {
        route_along_x();
      }
      break;
    case FlowPattern::kIndoorMixed: {
      // Spawn inside the room; wander between waypoints biased along x.
      *pos = {rng_.Uniform(0.1f * w, 0.9f * w), rng_.Uniform(0.1f * h, 0.9f * h)};
      const bool along_y = cross;
      const float base = along_y ? (rng_.Bernoulli(0.5) ? 1.0f : -1.0f) : 0.0f;
      Vec2 dir = along_y ? Vec2(0.0f, base) : Vec2(rng_.Bernoulli(0.5) ? 1.0f : -1.0f, 0.0f);
      dir = dir.Rotated(jitter);
      const float dist = rng_.Uniform(1.5f, 4.0f);
      *goal = *pos + dir * dist;
      break;
    }
  }
}

void SocialForceSimulator::SpawnOne(int step, int group_id, const Vec2& pos_hint,
                                    bool has_hint, Scene* scene) {
  AgentState a;
  a.id = next_id_++;
  a.group_id = group_id;
  Vec2 pos;
  Vec2 goal;
  SampleRoute(&pos, &goal);
  if (has_hint) {
    // Partner walks shoulder-to-shoulder: offset spawn, parallel goal.
    Vec2 offset = {rng_.Normal(0.0f, 0.4f), rng_.Normal(0.0f, 0.4f)};
    pos = pos_hint + offset;
    goal = goal + offset;
  }
  a.pos = pos;
  a.goal = goal;
  a.speed = std::max(0.03f, rng_.Normal(spec_.desired_speed_mean, spec_.desired_speed_std));
  Vec2 dir = (a.goal - a.pos).Normalized();
  a.vel = dir * (a.speed / spec_.dt);
  a.wander_steps_left = static_cast<int>(rng_.UniformInt(25, 70));

  AgentTrack track;
  track.agent_id = a.id;
  track.start_step = step;
  track.group_id = group_id;
  a.track_index = static_cast<int>(scene->tracks.size());
  scene->tracks.push_back(track);
  agents_.push_back(a);
}

void SocialForceSimulator::SpawnAgents(int step, Scene* scene) {
  while (static_cast<float>(agents_.size()) < target_count_) {
    // Stagger arrivals so the scene does not fill instantaneously.
    if (step > 0 && !rng_.Bernoulli(0.7)) break;
    if (rng_.Bernoulli(spec_.group_prob)) {
      const int group_id = next_id_ + 100000;
      SpawnOne(step, group_id, Vec2(), false, scene);
      const Vec2 hint = agents_.back().pos;
      SpawnOne(step, group_id, hint, true, scene);
    } else {
      SpawnOne(step, -1, Vec2(), false, scene);
    }
  }
}

Vec2 SocialForceSimulator::ForceOn(size_t i) const {
  const AgentState& a = agents_[i];
  const float dt = spec_.dt;

  // Goal-restoring force.
  Vec2 desired_dir = (a.goal - a.pos).Normalized();
  Vec2 v_desired = desired_dir * (a.speed / dt);
  Vec2 force = (v_desired - a.vel) / spec_.relaxation_time;

  // Anisotropic agent repulsion with the domain's passing-side convention.
  const float cutoff = kNeighborCutoffFactor * spec_.repulsion_range;
  Vec2 v_dir = a.vel.Normalized();
  Vec2 group_centroid{0.0f, 0.0f};
  int group_size = 0;
  for (size_t j = 0; j < agents_.size(); ++j) {
    if (j == i) continue;
    const AgentState& b = agents_[j];
    if (a.group_id >= 0 && b.group_id == a.group_id) {
      group_centroid += b.pos;
      ++group_size;
      continue;  // no repulsion inside a group
    }
    Vec2 diff = a.pos - b.pos;
    const float d = diff.Norm();
    if (d > cutoff || d < 1e-6f) continue;
    Vec2 n = diff.Normalized();
    // Field-of-view weight: neighbors ahead matter more than behind.
    const float cos_phi = v_dir.Dot(Vec2() - n);
    const float w = spec_.anisotropy + (1.0f - spec_.anisotropy) * 0.5f * (1.0f + cos_phi);
    const float mag = spec_.repulsion_strength *
                      std::exp((2.0f * spec_.agent_radius - d) / spec_.repulsion_range);
    // Rotate the evasion direction by the domain convention (clockwise for
    // positive bias => evade toward the agent's right).
    Vec2 evade = n.Rotated(-spec_.passing_side_bias);
    force += evade * (mag * w);
  }

  // Group cohesion toward the partner centroid when drifting apart.
  if (group_size > 0) {
    group_centroid = group_centroid / static_cast<float>(group_size);
    Vec2 to_centroid = group_centroid - a.pos;
    if (to_centroid.Norm() > 1.2f) {
      force += to_centroid.Normalized() * spec_.group_cohesion;
    }
  }

  // Soft wall repulsion keeps indoor agents inside the room.
  if (spec_.flow == FlowPattern::kIndoorMixed) {
    const float margin = kWallRange;
    auto wall = [&](float dist, Vec2 inward) {
      if (dist < margin * 3.0f) {
        force += inward * (kWallStrength * std::exp((margin - dist) / kWallRange));
      }
    };
    wall(a.pos.x, {1.0f, 0.0f});
    wall(spec_.world_width - a.pos.x, {-1.0f, 0.0f});
    wall(a.pos.y, {0.0f, 1.0f});
    wall(spec_.world_height - a.pos.y, {0.0f, -1.0f});
  }
  return force;
}

bool SocialForceSimulator::ShouldDeactivate(const AgentState& a) const {
  if (spec_.flow == FlowPattern::kIndoorMixed) {
    return a.wander_steps_left <= 0;
  }
  // Through-traffic leaves once past the world bounds (with slack).
  const float slack = 1.0f;
  if (a.pos.x < -slack || a.pos.x > spec_.world_width + slack || a.pos.y < -slack ||
      a.pos.y > spec_.world_height + slack) {
    return true;
  }
  return (a.goal - a.pos).Norm() < kArrivalRadius;
}

Scene SocialForceSimulator::Run(int num_steps) {
  ADAPTRAJ_CHECK_MSG(num_steps > 0, "num_steps must be positive");
  Scene scene;
  scene.num_steps = num_steps;
  agents_.clear();
  target_count_ = SampleTargetCount();

  const float dt_sub = spec_.dt / static_cast<float>(spec_.substeps);
  for (int step = 0; step < num_steps; ++step) {
    SpawnAgents(step, &scene);

    // Per-step velocity noise (per-axis, in units per recorded step).
    for (AgentState& a : agents_) {
      a.vel.x += rng_.Normal(0.0f, spec_.noise_std_x) / spec_.dt;
      a.vel.y += rng_.Normal(0.0f, spec_.noise_std_y) / spec_.dt;
    }

    for (int sub = 0; sub < spec_.substeps; ++sub) {
      std::vector<Vec2> forces(agents_.size());
      for (size_t i = 0; i < agents_.size(); ++i) forces[i] = ForceOn(i);
      for (size_t i = 0; i < agents_.size(); ++i) {
        AgentState& a = agents_[i];
        a.vel += forces[i] * dt_sub;
        const float vmax = 2.2f * a.speed / spec_.dt;
        const float vnorm = a.vel.Norm();
        if (vnorm > vmax) a.vel = a.vel * (vmax / vnorm);
        a.pos += a.vel * dt_sub;
      }
    }

    // Record and retire.
    std::vector<AgentState> survivors;
    survivors.reserve(agents_.size());
    for (AgentState& a : agents_) {
      scene.tracks[a.track_index].points.push_back(a.pos);
      a.wander_steps_left -= 1;
      if (spec_.flow == FlowPattern::kIndoorMixed &&
          (a.goal - a.pos).Norm() < kArrivalRadius) {
        // Wanderers pick a fresh waypoint instead of leaving.
        Vec2 unused_pos;
        Vec2 new_goal;
        Vec2 saved = a.pos;
        SampleRoute(&unused_pos, &new_goal);
        a.goal = saved + (new_goal - unused_pos);
      }
      if (!ShouldDeactivate(a)) survivors.push_back(a);
    }
    agents_ = std::move(survivors);
  }
  return scene;
}

std::vector<Scene> GenerateScenes(const DomainSpec& spec, int num_scenes,
                                  int steps_per_scene, uint64_t seed) {
  std::vector<Scene> scenes;
  scenes.reserve(num_scenes);
  for (int s = 0; s < num_scenes; ++s) {
    SocialForceSimulator simulator(spec, seed + static_cast<uint64_t>(s) * 7919u);
    scenes.push_back(simulator.Run(steps_per_scene));
  }
  return scenes;
}

}  // namespace sim
}  // namespace adaptraj
