// Minimal 2-D vector used by the crowd simulator.

#ifndef ADAPTRAJ_SIM_VEC2_H_
#define ADAPTRAJ_SIM_VEC2_H_

#include <cmath>

namespace adaptraj {
namespace sim {

/// 2-D point/vector in world coordinates (meters).
struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;

  Vec2() = default;
  Vec2(float x_in, float y_in) : x(x_in), y(y_in) {}

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(float s) const { return {x * s, y * s}; }
  Vec2 operator/(float s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  /// Euclidean length.
  float Norm() const { return std::sqrt(x * x + y * y); }

  /// Unit vector (or zero when degenerate).
  Vec2 Normalized() const {
    const float n = Norm();
    if (n < 1e-9f) return {0.0f, 0.0f};
    return {x / n, y / n};
  }

  /// Dot product.
  float Dot(const Vec2& o) const { return x * o.x + y * o.y; }

  /// Rotated counter-clockwise by `radians`.
  Vec2 Rotated(float radians) const {
    const float c = std::cos(radians);
    const float s = std::sin(radians);
    return {c * x - s * y, s * x + c * y};
  }
};

inline Vec2 operator*(float s, const Vec2& v) { return v * s; }

}  // namespace sim
}  // namespace adaptraj

#endif  // ADAPTRAJ_SIM_VEC2_H_
