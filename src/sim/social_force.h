// Helbing-Molnar social-force crowd simulator.
//
// Generates multi-agent trajectory scenes whose density/velocity/acceleration
// statistics and interaction conventions are controlled per domain by a
// DomainSpec. This is the data substrate standing in for the paper's four
// real datasets (see DESIGN.md).

#ifndef ADAPTRAJ_SIM_SOCIAL_FORCE_H_
#define ADAPTRAJ_SIM_SOCIAL_FORCE_H_

#include <vector>

#include "sim/domain_spec.h"
#include "sim/vec2.h"
#include "tensor/rng.h"

namespace adaptraj {
namespace sim {

/// Recorded trajectory of one agent: one point per recorded step while the
/// agent was active, starting at `start_step`.
struct AgentTrack {
  int agent_id = 0;
  int start_step = 0;
  int group_id = -1;  // shared by agents walking together, -1 if solo
  std::vector<Vec2> points;
};

/// One simulated scene: all tracks plus the number of recorded steps.
struct Scene {
  std::vector<AgentTrack> tracks;
  int num_steps = 0;

  /// Number of agents active at the given recorded step.
  int ActiveAgentsAt(int step) const;
};

/// Social-force simulator with per-domain parameters.
///
/// The force model on agent i:
///   F = (v_desired - v) / tau                                (goal restore)
///     + sum_j A * exp((2r - d_ij) / B) * R(bias) n_ij * w_ij (agent repulsion)
///     + cohesion * unit(centroid_group - x_i)                (group cohesion)
///     + wall terms                                           (boundaries)
/// where n_ij is the unit vector from j to i, R(bias) rotates it by the
/// domain's passing-side convention, and w_ij is the anisotropic
/// field-of-view weight lambda + (1-lambda)(1+cos phi)/2.
class SocialForceSimulator {
 public:
  SocialForceSimulator(const DomainSpec& spec, uint64_t seed);

  /// Simulates a fresh scene for `num_steps` recorded steps.
  Scene Run(int num_steps);

  const DomainSpec& spec() const { return spec_; }

 private:
  struct AgentState {
    int id = 0;
    int track_index = 0;
    int group_id = -1;
    Vec2 pos;
    Vec2 vel;    // units per second
    Vec2 goal;
    float speed = 0.3f;  // desired speed, units per recorded step
    int wander_steps_left = 0;  // indoor lifetime budget
  };

  /// Samples target concurrent agent count for a scene.
  float SampleTargetCount();
  /// Spawns one agent (and possibly a group partner) at recorded step `step`.
  void SpawnAgents(int step, Scene* scene);
  /// Creates a single agent state and registers its track.
  void SpawnOne(int step, int group_id, const Vec2& pos_hint, bool has_hint,
                Scene* scene);
  /// Picks a spawn position and goal according to the domain's flow pattern.
  void SampleRoute(Vec2* pos, Vec2* goal);
  /// Net force on agent `i` given the current agent set.
  Vec2 ForceOn(size_t i) const;
  /// True when the agent should be removed from the scene.
  bool ShouldDeactivate(const AgentState& a) const;

  DomainSpec spec_;
  Rng rng_;
  std::vector<AgentState> agents_;
  int next_id_ = 0;
  float target_count_ = 0.0f;
};

/// Convenience: simulates `num_scenes` scenes of `steps_per_scene` steps.
std::vector<Scene> GenerateScenes(const DomainSpec& spec, int num_scenes,
                                  int steps_per_scene, uint64_t seed);

}  // namespace sim
}  // namespace adaptraj

#endif  // ADAPTRAJ_SIM_SOCIAL_FORCE_H_
