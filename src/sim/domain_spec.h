// Domain presets for the synthetic trajectory corpora.
//
// The paper evaluates on four real datasets (ETH&UCY, L-CAS, SYI, SDD) whose
// Table-I statistics differ strongly in crowd density, velocity, and
// acceleration. We reproduce those axes of distribution shift with a
// social-force simulator parameterized per domain (see DESIGN.md,
// "Substitutions"). Each preset also fixes a passing-side convention — the
// neighbor-driven domain-SPECIFIC behaviour ("yielding right-of-way or
// left-of-way", Sec. I) that AdapTraj's specific extractors must capture and
// Counter's counterfactual discards.

#ifndef ADAPTRAJ_SIM_DOMAIN_SPEC_H_
#define ADAPTRAJ_SIM_DOMAIN_SPEC_H_

#include <string>
#include <vector>

namespace adaptraj {
namespace sim {

/// The four trajectory domains used throughout the paper's evaluation.
enum class Domain { kEthUcy = 0, kLcas = 1, kSyi = 2, kSdd = 3 };

/// All domains, in the paper's canonical order.
std::vector<Domain> AllDomains();

/// Short dataset name as printed in the paper's tables.
std::string DomainName(Domain d);

/// Dominant direction of crowd flow in a scene.
enum class FlowPattern {
  kBidirectionalX,  // two opposing streams along the x axis (ETH&UCY-like)
  kIndoorMixed,     // slow wandering with frequent direction changes (L-CAS)
  kCorridorY,       // dense fast corridor along the y axis (SYI-like)
  kCampusMixed,     // multiple crossing streams (SDD-like)
};

/// Parameters of one simulated domain.
struct DomainSpec {
  std::string name;
  Domain domain = Domain::kEthUcy;
  FlowPattern flow = FlowPattern::kBidirectionalX;

  // Crowd density: concurrently active agents per scene.
  float mean_agents = 9.0f;
  float std_agents = 3.0f;

  // Kinematics. Speeds are world units per recorded step (dt seconds);
  // Table I's v/a statistics are computed on the same per-step scale.
  float desired_speed_mean = 0.3f;
  float desired_speed_std = 0.1f;
  float relaxation_time = 0.8f;  // tau of the goal-restoring force (s)

  // Social-force interaction parameters (Helbing & Molnar).
  float repulsion_strength = 1.2f;  // A
  float repulsion_range = 0.5f;     // B (m)
  float agent_radius = 0.25f;       // body radius (m)
  float anisotropy = 0.4f;          // lambda: field-of-view weighting

  /// Signed passing-side convention in radians: positive rotates the evasion
  /// direction clockwise (evade to the agent's right / yield right-of-way),
  /// negative counter-clockwise. This is the domain-specific neighbor
  /// behaviour; set to 0 to ablate it (tests use this).
  float passing_side_bias = 0.4f;

  // Group behaviour.
  float group_prob = 0.2f;      // chance a spawned agent brings a partner
  float group_cohesion = 0.6f;  // attraction toward group centroid

  // Flow-direction sampling.
  float flow_angle_jitter = 0.3f;  // std (rad) around the dominant direction
  float cross_flow_prob = 0.0f;    // probability of following the minor axis

  // Per-axis Gaussian velocity noise per recorded step (drives the Table I
  // acceleration statistics).
  float noise_std_x = 0.03f;
  float noise_std_y = 0.03f;

  // World geometry (meters) and timing.
  float world_width = 14.0f;
  float world_height = 14.0f;
  float dt = 0.4f;    // recording interval (s), matching TrajNet++
  int substeps = 4;   // physics sub-steps per recorded step
};

/// ETH&UCY-like preset: moderate density, horizontal bidirectional flow.
DomainSpec EthUcySpec();
/// L-CAS-like preset: slow indoor motion, small velocities, jerky.
DomainSpec LcasSpec();
/// SYI-like preset: very dense fast vertical corridor (highest v/a on y).
DomainSpec SyiSpec();
/// SDD-like preset: campus-scale mixed crossing flows.
DomainSpec SddSpec();

/// Preset lookup by domain tag.
DomainSpec SpecForDomain(Domain d);

}  // namespace sim
}  // namespace adaptraj

#endif  // ADAPTRAJ_SIM_DOMAIN_SPEC_H_
