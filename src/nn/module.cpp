#include "nn/module.h"

#include <algorithm>
#include <cmath>

namespace adaptraj {
namespace nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : params_) out.push_back(t);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, t] : params_) out.emplace_back(name, t);
  for (const auto& [name, child] : children_) {
    for (auto& [sub_name, t] : child->NamedParameters()) {
      out.emplace_back(name + "." + sub_name, t);
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const Tensor& t : Parameters()) n += t.size();
  return n;
}

void Module::CopyParametersFrom(const Module& other) {
  CopyParameterValues(other.Parameters(), Parameters());
}

std::vector<float> Module::ParameterSnapshot() const {
  std::vector<float> out;
  out.reserve(static_cast<size_t>(NumParams()));
  for (const Tensor& t : Parameters()) {
    out.insert(out.end(), t.data(), t.data() + t.size());
  }
  return out;
}

void Module::train(bool on) {
  training_ = on;
  for (const auto& [name, child] : children_) child->train(on);
}

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  ADAPTRAJ_CHECK_MSG(t.defined(), "registering null parameter " << name);
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  ADAPTRAJ_CHECK_MSG(child != nullptr, "registering null module " << name);
  children_.emplace_back(name, child);
}

Tensor XavierMatrix(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand({fan_in, fan_out}, rng, -limit, limit);
}

void CopyParameterValues(const std::vector<Tensor>& src,
                         const std::vector<Tensor>& dst) {
  ADAPTRAJ_CHECK_MSG(src.size() == dst.size(),
                     "CopyParameterValues: parameter count mismatch ("
                         << src.size() << " vs " << dst.size() << ")");
  for (size_t i = 0; i < src.size(); ++i) {
    ADAPTRAJ_CHECK_MSG(src[i].shape() == dst[i].shape(),
                       "CopyParameterValues: shape mismatch at parameter " << i);
    std::copy(src[i].data(), src[i].data() + src[i].size(),
              dst[i].impl()->data.data());
  }
}

}  // namespace nn
}  // namespace adaptraj
