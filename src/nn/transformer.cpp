#include "nn/transformer.h"

#include <cmath>

namespace adaptraj {
namespace nn {

using namespace ops;  // NOLINT(build/namespaces)

LayerNorm::LayerNorm(int64_t features, float eps) : features_(features), eps_(eps) {
  gain_ = RegisterParameter("gain", Tensor::Full({1, features}, 1.0f));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1, features}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  ADAPTRAJ_CHECK_MSG(x.dim() >= 1 && x.shape().back() == features_,
                     "LayerNorm expects last axis " << features_ << "; got "
                                                    << ShapeToString(x.shape()));
  Tensor mean = MeanAxis(x, -1, /*keepdim=*/true);
  Tensor centered = BroadcastAdd(x, Neg(mean));
  Tensor var = MeanAxis(Square(centered), -1, /*keepdim=*/true);
  Tensor inv = Div(Tensor::Full(var.shape(), 1.0f), Sqrt(AddScalar(var, eps_)));
  Tensor normalized = BroadcastMul(centered, inv);
  // Reshape the learned gain/bias to the input rank for broadcasting.
  Shape param_shape(x.dim(), 1);
  param_shape.back() = features_;
  Tensor g = Reshape(gain_, param_shape);
  Tensor b = Reshape(bias_, param_shape);
  return BroadcastAdd(BroadcastMul(normalized, g), b);
}

TransformerBlock::TransformerBlock(int64_t model_dim, int64_t ff_dim, Rng* rng)
    : model_dim_(model_dim),
      norm_attn_(model_dim),
      norm_ff_(model_dim),
      q_(model_dim, model_dim, rng),
      k_(model_dim, model_dim, rng),
      v_(model_dim, model_dim, rng),
      proj_(model_dim, model_dim, rng),
      ff_({model_dim, ff_dim, model_dim}, rng, Activation::kRelu, Activation::kNone) {
  RegisterModule("norm_attn", &norm_attn_);
  RegisterModule("norm_ff", &norm_ff_);
  RegisterModule("q", &q_);
  RegisterModule("k", &k_);
  RegisterModule("v", &v_);
  RegisterModule("proj", &proj_);
  RegisterModule("ff", &ff_);
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  ADAPTRAJ_CHECK_MSG(x.dim() == 3 && x.shape()[2] == model_dim_,
                     "TransformerBlock expects [B, T, D]; got "
                         << ShapeToString(x.shape()));
  const int64_t b = x.shape()[0];
  const int64_t t = x.shape()[1];
  const int64_t d = model_dim_;

  // Pre-norm attention.
  Tensor h = norm_attn_.Forward(x);
  Tensor flat = Reshape(h, {b * t, d});
  Tensor q = Reshape(q_.Forward(flat), {b, t, d});
  Tensor k = Reshape(k_.Forward(flat), {b, t, d});
  Tensor v = Reshape(v_.Forward(flat), {b, t, d});

  // Batched attention: scores = q · kᵀ / sqrt(d) for all B slices in one
  // BatchMatMul launch (trans_b folds the key transpose into the kernel's
  // packing — no Transpose node), last-axis softmax over the 3-D scores,
  // then one more BatchMatMul against the values. Three graph nodes replace
  // the former B-iteration Slice/MatMul/Transpose/Concat loop, and B == 0
  // flows through natively (every op handles empty extents).
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  Tensor scores = MulScalar(BatchMatMul(q, k, /*trans_a=*/false, /*trans_b=*/true),
                            inv_sqrt_d);               // [B, T, T]
  Tensor weights = Softmax(scores);                    // softmax over keys
  Tensor attended = BatchMatMul(weights, v);           // [B, T, D]
  Tensor attn_out =
      Reshape(proj_.Forward(Reshape(attended, {b * t, d})), {b, t, d});
  Tensor res1 = Add(x, attn_out);

  // Pre-norm feed-forward.
  Tensor h2 = norm_ff_.Forward(res1);
  Tensor ff_out = Reshape(ff_.Forward(Reshape(h2, {b * t, d})), {b, t, d});
  return Add(res1, ff_out);
}

TransformerEncoder::TransformerEncoder(int64_t input_dim, int64_t model_dim,
                                       int num_blocks, int max_len, Rng* rng)
    : model_dim_(model_dim),
      max_len_(max_len),
      input_proj_(input_dim, model_dim, rng),
      final_norm_(model_dim) {
  ADAPTRAJ_CHECK_MSG(num_blocks >= 1, "need at least one Transformer block");
  RegisterModule("input_proj", &input_proj_);
  positions_ = RegisterParameter(
      "positions", Tensor::Randn({static_cast<int64_t>(max_len), model_dim}, rng, 0.1f));
  for (int i = 0; i < num_blocks; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(model_dim, 2 * model_dim, rng));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
  RegisterModule("final_norm", &final_norm_);
}

Tensor TransformerEncoder::Forward(const std::vector<Tensor>& steps) const {
  ADAPTRAJ_CHECK_MSG(!steps.empty(), "TransformerEncoder on empty sequence");
  ADAPTRAJ_CHECK_MSG(static_cast<int>(steps.size()) <= max_len_,
                     "sequence longer than max_len " << max_len_);
  const int64_t b = steps[0].shape()[0];
  const int64_t t = static_cast<int64_t>(steps.size());

  std::vector<Tensor> embedded;
  embedded.reserve(steps.size());
  for (int64_t i = 0; i < t; ++i) {
    Tensor e = input_proj_.Forward(steps[i]);                       // [B, D]
    Tensor pos = Slice(positions_, 0, i, i + 1);                    // [1, D]
    embedded.push_back(Reshape(BroadcastAdd(e, pos), {b, 1, model_dim_}));
  }
  Tensor x = Concat(embedded, 1);  // [B, T, D]
  for (const auto& block : blocks_) x = block->Forward(x);
  x = final_norm_.Forward(x);
  return Reshape(Slice(x, 1, t - 1, t), {b, model_dim_});  // last step
}

}  // namespace nn
}  // namespace adaptraj
