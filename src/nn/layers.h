// Core trainable layers: Linear, Mlp, Dropout, LstmCell, Lstm.

#ifndef ADAPTRAJ_NN_LAYERS_H_
#define ADAPTRAJ_NN_LAYERS_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace nn {

/// Activation applied between Mlp layers (and optionally after the last).
enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// Applies the given activation.
Tensor Activate(const Tensor& x, Activation act);

/// Affine layer y = x W + b for x of shape [B, in].
class Linear : public Module {
 public:
  /// Creates a layer with Xavier-initialized weights and zero bias.
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  /// Forward pass; x must be [B, in_features].
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return weight_.shape()[0]; }
  int64_t out_features() const { return weight_.shape()[1]; }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]
};

/// Multi-layer perceptron with a hidden activation (ReLU by default).
class Mlp : public Module {
 public:
  /// `dims` gives layer widths including input and output, e.g. {16, 64, 2}.
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      Activation hidden = Activation::kRelu, Activation output = Activation::kNone);

  /// Forward pass; x must be [B, dims.front()].
  Tensor Forward(const Tensor& x) const;

  int64_t out_features() const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_;
  Activation output_;
};

/// Inverted dropout, gated by the Module training mode (module.h): in
/// training mode each element is zeroed with probability `rate` and the
/// survivors are scaled by 1/(1-rate); in inference mode (after eval()) the
/// layer is the identity, so no rng draw is consumed and eval outputs are
/// deterministic. The expectation of the output matches the input either way.
class Dropout : public Module {
 public:
  /// `rate` is the drop probability in [0, 1).
  explicit Dropout(float rate);

  /// Applies dropout to x; `rng` is only consumed in training mode with a
  /// positive rate.
  Tensor Forward(const Tensor& x, Rng* rng) const;

  float rate() const { return rate_; }

 private:
  float rate_;
};

/// Single LSTM step (standard gates, forget-gate bias initialized to 1).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// State pair (hidden, cell), each [B, H].
  struct State {
    Tensor h;
    Tensor c;
  };

  /// Zero state for the given batch size.
  State InitialState(int64_t batch) const;

  /// One step: x is [B, input_size]; returns the next state.
  State Forward(const Tensor& x, const State& state) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Tensor w_ih_;  // [input, 4H] gate order: i, f, g, o
  Tensor w_hh_;  // [H, 4H]
  Tensor bias_;  // [1, 4H]
};

/// LSTM unrolled over a sequence of per-step inputs.
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// Runs the cell over `steps` ([T] tensors of [B, input]); returns the
  /// final state and optionally (when outputs != nullptr) every hidden state.
  LstmCell::State Forward(const std::vector<Tensor>& steps,
                          std::vector<Tensor>* outputs = nullptr) const;

  const LstmCell& cell() const { return cell_; }
  int64_t hidden_size() const { return cell_.hidden_size(); }

 private:
  LstmCell cell_;
};

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_LAYERS_H_
