// Binary checkpointing of module parameters (Status-based, no exceptions).

#ifndef ADAPTRAJ_NN_SERIALIZE_H_
#define ADAPTRAJ_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "tensor/status.h"

namespace adaptraj {
namespace nn {

/// Writes every named parameter of `module` to `path`.
///
/// Format: magic "ATRJ1\n", uint64 count, then per parameter: uint32 name
/// length, name bytes, uint32 rank, int64 dims, float32 data.
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters. Names and shapes must match
/// the module exactly; extra or missing entries are errors.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_SERIALIZE_H_
