// Binary checkpointing of module parameters (Status-based, no exceptions).

#ifndef ADAPTRAJ_NN_SERIALIZE_H_
#define ADAPTRAJ_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "tensor/status.h"

namespace adaptraj {
namespace nn {

/// Checkpoint format version written by this build (see SaveParameters).
constexpr uint32_t kCheckpointVersion = 2;

/// Writes every named parameter of `module` to `path`.
///
/// Format v2 header: 4-byte magic "ATRJ", uint32 format version, uint32
/// endianness tag 0x01020304 (written in native byte order, so a reader on a
/// byte-swapped machine sees 0x04030201 and rejects the file instead of
/// silently loading garbage). Body: uint64 count, then per parameter: uint32
/// name length, name bytes, uint32 rank, int64 dims, float32 data.
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters. Names and shapes must match
/// the module exactly; extra or missing entries are errors. Rejects files
/// with a foreign magic, a different format version (including the
/// un-versioned legacy "ATRJ1\n" layout, which is called out explicitly), or
/// a mismatched endianness tag — each with a distinct message.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_SERIALIZE_H_
