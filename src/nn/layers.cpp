#include "nn/layers.h"

namespace adaptraj {
namespace nn {

using namespace ops;  // NOLINT(build/namespaces): op sugar within the library

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  ADAPTRAJ_CHECK_MSG(false, "unreachable activation");
  return x;
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng) {
  weight_ = RegisterParameter("w", XavierMatrix(in_features, out_features, rng));
  bias_ = RegisterParameter("b", Tensor::Zeros({1, out_features}));
}

Tensor Linear::Forward(const Tensor& x) const {
  ADAPTRAJ_CHECK_MSG(x.dim() == 2 && x.shape()[1] == in_features(),
                     "Linear expects [B, " << in_features() << "]; got "
                                           << ShapeToString(x.shape()));
  // One fused node (values bit-identical to BroadcastAdd(MatMul(x, w), b)).
  return Affine(x, weight_, bias_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, Activation hidden, Activation output)
    : hidden_(hidden), output_(output) {
  ADAPTRAJ_CHECK_MSG(dims.size() >= 2, "Mlp needs at least input and output widths");
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    h = Activate(h, i + 1 < layers_.size() ? hidden_ : output_);
  }
  return h;
}

int64_t Mlp::out_features() const { return layers_.back()->out_features(); }

Dropout::Dropout(float rate) : rate_(rate) {
  ADAPTRAJ_CHECK_MSG(rate >= 0.0f && rate < 1.0f,
                     "Dropout rate must be in [0, 1); got " << rate);
}

Tensor Dropout::Forward(const Tensor& x, Rng* rng) const {
  if (!is_training() || rate_ == 0.0f) return x;
  ADAPTRAJ_CHECK_MSG(rng != nullptr, "Dropout in training mode needs an rng");
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  std::vector<float> mask(static_cast<size_t>(x.size()));
  for (auto& m : mask) m = rng->Bernoulli(keep) ? scale : 0.0f;
  // The mask is a constant: gradients flow into x only.
  return Mul(x, Tensor::FromVector(x.shape(), std::move(mask)));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter("w_ih", XavierMatrix(input_size, 4 * hidden_size, rng));
  w_hh_ = RegisterParameter("w_hh", XavierMatrix(hidden_size, 4 * hidden_size, rng));
  Tensor bias = Tensor::Zeros({1, 4 * hidden_size});
  // Forget-gate bias = 1 eases gradient flow early in training.
  for (int64_t j = hidden_size; j < 2 * hidden_size; ++j) bias.data()[j] = 1.0f;
  bias_ = RegisterParameter("b", bias);
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return {Tensor::Zeros({batch, hidden_size_}), Tensor::Zeros({batch, hidden_size_})};
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& state) const {
  // Three fused graph nodes per step: pre-activation gates in one GEMM pair,
  // then the sigmoid/tanh gate chains for c and h in one kernel each.
  Tensor gates = LinearGates(x, w_ih_, state.h, w_hh_, bias_);
  Tensor c_next = LstmCellC(gates, state.c);
  Tensor h_next = LstmCellH(gates, c_next);
  return {h_next, c_next};
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterModule("cell", &cell_);
}

LstmCell::State Lstm::Forward(const std::vector<Tensor>& steps,
                              std::vector<Tensor>* outputs) const {
  ADAPTRAJ_CHECK_MSG(!steps.empty(), "Lstm::Forward on empty sequence");
  LstmCell::State state = cell_.InitialState(steps[0].shape()[0]);
  for (const Tensor& x : steps) {
    state = cell_.Forward(x, state);
    if (outputs != nullptr) outputs->push_back(state.h);
  }
  return state;
}

}  // namespace nn
}  // namespace adaptraj
