// Single-head Transformer encoder for trajectory sequences.
//
// The paper's individual mobility layer (Sec. II-C) allows "any sequential
// models, such as LSTM, or more advanced models like Transformer". This is
// the Transformer instantiation: learned positional embeddings, one (or
// more) pre-norm self-attention blocks with residual feed-forward layers.

#ifndef ADAPTRAJ_NN_TRANSFORMER_H_
#define ADAPTRAJ_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace adaptraj {
namespace nn {

/// Layer normalization over the last axis with learned gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  /// Normalizes the last axis of x (any rank >= 1, last extent == features).
  Tensor Forward(const Tensor& x) const;

 private:
  int64_t features_;
  float eps_;
  Tensor gain_;  // [1, features]
  Tensor bias_;  // [1, features]
};

/// One pre-norm Transformer block: self-attention + feed-forward, both with
/// residual connections. Single attention head (widths here are small).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t model_dim, int64_t ff_dim, Rng* rng);

  /// x is [B, T, D]; attention is bidirectional over the T observed steps.
  Tensor Forward(const Tensor& x) const;

 private:
  int64_t model_dim_;
  LayerNorm norm_attn_;
  LayerNorm norm_ff_;
  Linear q_;
  Linear k_;
  Linear v_;
  Linear proj_;
  Mlp ff_;
};

/// Sequence encoder: embeds per-step inputs, adds learned positional
/// embeddings, applies `num_blocks` Transformer blocks and returns the final
/// step's representation (the analogue of an LSTM's last hidden state).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t input_dim, int64_t model_dim, int num_blocks, int max_len,
                     Rng* rng);

  /// steps: T tensors of [B, input_dim], T <= max_len. Returns [B, model_dim].
  Tensor Forward(const std::vector<Tensor>& steps) const;

  int64_t model_dim() const { return model_dim_; }

 private:
  int64_t model_dim_;
  int max_len_;
  Linear input_proj_;
  Tensor positions_;  // [max_len, model_dim] learned positional embedding
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_norm_;
};

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_TRANSFORMER_H_
