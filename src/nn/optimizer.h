// Optimizers with parameter groups.
//
// AdapTraj's Alg. 1 trains different module groups at different learning-rate
// fractions (f_low / f_high) that change between phases, so groups carry a
// mutable scale factor on top of the base learning rate.

#ifndef ADAPTRAJ_NN_OPTIMIZER_H_
#define ADAPTRAJ_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace adaptraj {
namespace nn {

/// A set of parameters sharing a learning-rate scale.
struct ParamGroup {
  std::vector<Tensor> params;
  float lr_scale = 1.0f;
};

/// Optimizer interface: groups of parameters stepped against their gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Adds a group; returns its index for later SetGroupScale calls.
  int AddGroup(std::vector<Tensor> params, float lr_scale = 1.0f);

  /// Updates the learning-rate scale of a group.
  void SetGroupScale(int group, float lr_scale);

  /// Sets the base learning rate.
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

  /// Zeroes gradients of every managed parameter.
  void ZeroGrad();

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

 protected:
  explicit Optimizer(float lr) : lr_(lr) {}

  float lr_;
  std::vector<ParamGroup> groups_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<std::vector<float>>> velocity_;  // [group][param][i]
};

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<std::vector<float>>> m_;  // first moment
  std::vector<std::vector<std::vector<float>>> v_;  // second moment
};

/// Rescales gradients in-place so their global L2 norm is at most max_norm.
void ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_OPTIMIZER_H_
