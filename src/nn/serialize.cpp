#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

namespace adaptraj {
namespace nn {

namespace {

constexpr char kMagic[4] = {'A', 'T', 'R', 'J'};
constexpr uint32_t kEndianTag = 0x01020304u;
// The pre-versioning layout started "ATRJ1\n": after the 4 magic bytes its
// next two bytes are '1' '\n', which land in the low half of the would-be
// version field on a little-endian reader. Detect it for a better error.
constexpr uint32_t kLegacyVersionMark = 0x0A31u;  // '\n' << 8 | '1'

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kCheckpointVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&kEndianTag), sizeof(kEndianTag));
  auto named = module.NamedParameters();
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, t] : named) {
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), name_len);
    const uint32_t rank = static_cast<uint32_t>(t.shape().size());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : t.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

Status LoadParameters(Module* module, const std::string& path) {
  ADAPTRAJ_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid(path + " is not an AdapTraj checkpoint");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) return Status::IOError("truncated checkpoint header in " + path);
  // Legacy layout first: v1 files have no endianness tag, so reading one
  // would misreport them as corrupt instead of naming the real problem.
  if ((version & 0xFFFFu) == kLegacyVersionMark) {
    return Status::Invalid(path + " is a legacy un-versioned (v1) checkpoint; "
                                  "re-save it with this build to upgrade");
  }
  uint32_t endian = 0;
  in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
  if (!in) return Status::IOError("truncated checkpoint header in " + path);
  // Endianness before the version compare: on a byte-swapped file the
  // version field itself parses as garbage, and the byte-order diagnostic is
  // the one that names the actual problem.
  if (endian != kEndianTag) {
    if (endian == 0x04030201u) {
      return Status::Invalid(path + " was written on a machine with opposite "
                                    "byte order (endianness mismatch)");
    }
    return Status::Invalid(path + " has a corrupt endianness tag");
  }
  if (version != kCheckpointVersion) {
    return Status::Invalid(path + " has checkpoint format version " +
                           std::to_string(version) + "; this build reads version " +
                           std::to_string(kCheckpointVersion));
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::IOError("truncated checkpoint " + path);

  auto named = module->NamedParameters();
  std::map<std::string, Tensor> by_name;
  for (auto& [name, t] : named) by_name.emplace(name, t);
  if (count != named.size()) {
    return Status::Invalid("checkpoint has " + std::to_string(count) +
                           " parameters; module has " + std::to_string(named.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) return Status::Invalid("corrupt name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank > 8) return Status::Invalid("corrupt rank for " + name);
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      in.read(reinterpret_cast<char*>(&shape[d]), sizeof(int64_t));
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter " + name + " not present in module");
    }
    Tensor t = it->second;
    if (t.shape() != shape) {
      return Status::Invalid("shape mismatch for " + name + ": checkpoint " +
                             ShapeToString(shape) + " vs module " +
                             ShapeToString(t.shape()));
    }
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) return Status::IOError("truncated data for " + name);
  }
  return Status::Ok();
}

}  // namespace nn
}  // namespace adaptraj
