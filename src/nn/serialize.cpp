#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

namespace adaptraj {
namespace nn {

namespace {

constexpr char kMagic[] = "ATRJ1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, kMagicLen);
  auto named = module.NamedParameters();
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, t] : named) {
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), name_len);
    const uint32_t rank = static_cast<uint32_t>(t.shape().size());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : t.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

Status LoadParameters(Module* module, const std::string& path) {
  ADAPTRAJ_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::Invalid(path + " is not an AdapTraj checkpoint");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::IOError("truncated checkpoint " + path);

  auto named = module->NamedParameters();
  std::map<std::string, Tensor> by_name;
  for (auto& [name, t] : named) by_name.emplace(name, t);
  if (count != named.size()) {
    return Status::Invalid("checkpoint has " + std::to_string(count) +
                           " parameters; module has " + std::to_string(named.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) return Status::Invalid("corrupt name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank > 8) return Status::Invalid("corrupt rank for " + name);
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      in.read(reinterpret_cast<char*>(&shape[d]), sizeof(int64_t));
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter " + name + " not present in module");
    }
    Tensor t = it->second;
    if (t.shape() != shape) {
      return Status::Invalid("shape mismatch for " + name + ": checkpoint " +
                             ShapeToString(shape) + " vs module " +
                             ShapeToString(t.shape()));
    }
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) return Status::IOError("truncated data for " + name);
  }
  return Status::Ok();
}

}  // namespace nn
}  // namespace adaptraj
