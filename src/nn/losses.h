// Loss functions used by the backbones and the AdapTraj framework.

#ifndef ADAPTRAJ_NN_LOSSES_H_
#define ADAPTRAJ_NN_LOSSES_H_

#include <vector>

#include "tensor/ops.h"

namespace adaptraj {
namespace nn {

/// Mean squared error over all elements.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

/// Scale-invariant MSE (Eq. 14): (1/m)||d||^2 - (1/m^2)(sum d)^2 where
/// d = pred - target and m is the element count. Credits errors that share a
/// direction; used for the AdapTraj reconstruction loss.
Tensor SimseLoss(const Tensor& pred, const Tensor& target);

/// Cross entropy from raw logits [B, C] against integer labels.
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels);

/// KL( N(mu, exp(logvar)) || N(0, I) ), averaged over the batch dimension.
Tensor KlStandardNormal(const Tensor& mu, const Tensor& logvar);

/// Squared-Frobenius soft orthogonality between two feature matrices
/// [B, D1], [B, D2]: ||A^T B||_F^2 (Eq. 20's per-term form). Normalized by
/// batch size squared so the magnitude is batch-invariant.
Tensor OrthogonalityLoss(const Tensor& a, const Tensor& b);

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_LOSSES_H_
