// Module: base class for neural-network components with parameter registry.
//
// A Module owns its submodules as ordinary members and registers them (plus
// its own parameters) so that Parameters()/NamedParameters() can walk the
// tree for optimizers and (de)serialization.

#ifndef ADAPTRAJ_NN_MODULE_H_
#define ADAPTRAJ_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace adaptraj {
namespace nn {

/// Base class for trainable components.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its registered submodules.
  std::vector<Tensor> Parameters() const;

  /// All parameters with hierarchical dotted names ("enc.w", ...).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Zeroes gradient buffers of every parameter in the tree.
  void ZeroGrad();

  /// Total scalar parameter count.
  int64_t NumParams() const;

  /// Overwrites every parameter with the values of `other`'s parameters.
  /// Both modules must have identical structure (same Parameters() order and
  /// shapes) — e.g. a training replica built from the same configuration.
  /// Gradients and autograd state are untouched.
  void CopyParametersFrom(const Module& other);

  /// All parameter values flattened into one vector in Parameters() order.
  /// The byte-exact fingerprint used by the training-determinism tests.
  std::vector<float> ParameterSnapshot() const;

  // --- Training / inference mode ---------------------------------------------
  //
  // Mode-dependent layers (Dropout) consult is_training(); everything else is
  // unaffected. Raw modules start in training mode (the PyTorch convention),
  // but every core::Method puts its model tree in eval mode at construction
  // and Train() flips train() on entry / eval() on exit — so a method serves
  // in inference mode whether its weights were trained in-process or
  // restored via LoadParameters. The mode is plain state, not
  // synchronization: set it before sharing a module across serving threads,
  // not concurrently with them.

  /// Puts this module and every registered submodule in training mode
  /// (`on == false` selects inference mode).
  void train(bool on = true);
  /// Shorthand for train(false).
  void eval() { train(false); }
  /// True while in training mode.
  bool is_training() const { return training_; }

 protected:
  Module() = default;

  /// Records a parameter; returns it for convenient member initialization.
  Tensor RegisterParameter(const std::string& name, Tensor t);

  /// Records a non-owning pointer to a submodule (owned as a member).
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// Xavier/Glorot-uniform initialized matrix of shape [fan_in, fan_out].
Tensor XavierMatrix(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Copies the values of `src[i]` into `dst[i]` for parallel parameter lists
/// (same length, matching shapes). The primitive under
/// Module::CopyParametersFrom and ParallelTrainer's replica broadcast.
void CopyParameterValues(const std::vector<Tensor>& src,
                         const std::vector<Tensor>& dst);

}  // namespace nn
}  // namespace adaptraj

#endif  // ADAPTRAJ_NN_MODULE_H_
