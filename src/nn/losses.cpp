#include "nn/losses.h"

namespace adaptraj {
namespace nn {

using namespace ops;  // NOLINT(build/namespaces)

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  return Mean(Square(Sub(pred, target)));
}

Tensor SimseLoss(const Tensor& pred, const Tensor& target) {
  Tensor diff = Sub(pred, target);
  const float m = static_cast<float>(diff.size());
  Tensor first = MulScalar(Sum(Square(diff)), 1.0f / m);
  Tensor second = MulScalar(Square(Sum(diff)), 1.0f / (m * m));
  return Sub(first, second);
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels) {
  return NllLoss(LogSoftmax(logits), labels);
}

Tensor KlStandardNormal(const Tensor& mu, const Tensor& logvar) {
  ADAPTRAJ_CHECK_MSG(mu.shape() == logvar.shape(), "KL: mu/logvar shape mismatch");
  const float batch = static_cast<float>(mu.shape()[0]);
  // -0.5 * sum(1 + logvar - mu^2 - exp(logvar)) / B
  Tensor inner = Sub(Sub(AddScalar(logvar, 1.0f), Square(mu)), Exp(logvar));
  return MulScalar(Sum(inner), -0.5f / batch);
}

Tensor OrthogonalityLoss(const Tensor& a, const Tensor& b) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 2 && b.dim() == 2 && a.shape()[0] == b.shape()[0],
                     "OrthogonalityLoss expects [B, D1], [B, D2] with equal batch");
  const float batch = static_cast<float>(a.shape()[0]);
  Tensor gram = MatMul(Transpose(a), b);  // [D1, D2]
  return MulScalar(Sum(Square(gram)), 1.0f / (batch * batch));
}

}  // namespace nn
}  // namespace adaptraj
