#include "nn/optimizer.h"

#include <cmath>

#include "tensor/kernels.h"

namespace adaptraj {
namespace nn {

int Optimizer::AddGroup(std::vector<Tensor> params, float lr_scale) {
  for (const Tensor& p : params) {
    ADAPTRAJ_CHECK_MSG(p.requires_grad(), "optimizer parameter does not require grad");
  }
  groups_.push_back({std::move(params), lr_scale});
  return static_cast<int>(groups_.size()) - 1;
}

void Optimizer::SetGroupScale(int group, float lr_scale) {
  ADAPTRAJ_CHECK_MSG(group >= 0 && group < static_cast<int>(groups_.size()),
                     "bad group index " << group);
  groups_[group].lr_scale = lr_scale;
}

void Optimizer::ZeroGrad() {
  for (auto& g : groups_) {
    for (Tensor& p : g.params) p.ZeroGrad();
  }
}

Sgd::Sgd(float lr, float momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::Step() {
  velocity_.resize(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    auto& group = groups_[gi];
    velocity_[gi].resize(group.params.size());
    const float lr = lr_ * group.lr_scale;
    for (size_t pi = 0; pi < group.params.size(); ++pi) {
      Tensor& p = group.params[pi];
      auto& impl = *p.impl();
      if (impl.grad.empty()) continue;
      auto& vel = velocity_[gi][pi];
      if (momentum_ != 0.0f && vel.empty()) vel.assign(impl.data.size(), 0.0f);
      kernels::SgdUpdate(impl.data.data(), impl.grad.data(), vel.data(),
                         static_cast<int64_t>(impl.data.size()), lr, momentum_);
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps, float weight_decay)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

void Adam::Step() {
  ++t_;
  m_.resize(groups_.size());
  v_.resize(groups_.size());
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    auto& group = groups_[gi];
    m_[gi].resize(group.params.size());
    v_[gi].resize(group.params.size());
    const float lr = lr_ * group.lr_scale;
    if (lr == 0.0f) continue;
    for (size_t pi = 0; pi < group.params.size(); ++pi) {
      Tensor& p = group.params[pi];
      auto& impl = *p.impl();
      if (impl.grad.empty()) continue;
      auto& m = m_[gi][pi];
      auto& v = v_[gi][pi];
      if (m.empty()) m.assign(impl.data.size(), 0.0f);
      if (v.empty()) v.assign(impl.data.size(), 0.0f);
      kernels::AdamUpdate(impl.data.data(), impl.grad.data(), m.data(), v.data(),
                          static_cast<int64_t>(impl.data.size()), lr, beta1_,
                          beta2_, eps_, weight_decay_, bc1, bc2);
    }
  }
}

void ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0.0;
  for (const Tensor& p : params) {
    const auto& impl = *p.impl();
    for (float g : impl.grad) total += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (const Tensor& p : params) {
    auto& impl = *p.impl();
    for (float& g : impl.grad) g *= scale;
  }
}

}  // namespace nn
}  // namespace adaptraj
