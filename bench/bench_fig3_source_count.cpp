// Figure 3: AdapTraj ADE on SDD across source-domain configurations, for
// both backbones. The paper's bars: {SDD (i.i.d.)}, {ETH&UCY},
// {ETH&UCY, L-CAS}, {ETH&UCY, L-CAS, SYI}.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct Bar {
  const char* label;
  std::vector<sim::Domain> domains;
};

void Run() {
  PrintBanner("Figure 3", "AdapTraj ADE vs number of source domains (SDD target)");
  const BenchScales scales = GetScales();
  const std::vector<Bar> bars = {
      {"SDD (i.i.d.)", {sim::Domain::kSdd}},
      {"ETH-UCY", {sim::Domain::kEthUcy}},
      {"ETH-UCY,L-CAS", {sim::Domain::kEthUcy, sim::Domain::kLcas}},
      {"ETH-UCY,L-CAS,SYI",
       {sim::Domain::kEthUcy, sim::Domain::kLcas, sim::Domain::kSyi}},
  };

  eval::TablePrinter table({"Model", "Source Domains", "ADE", "FDE"}, {18, 20, 8, 8});
  table.PrintHeader();
  for (auto backbone : {models::BackboneKind::kLbebm, models::BackboneKind::kPecnet}) {
    std::vector<float> ades;
    for (const Bar& bar : bars) {
      auto dgd = data::BuildDomainGeneralizationData(bar.domains, sim::Domain::kSdd,
                                                     MakeCorpusConfig(scales));
      auto cfg = MakeExperimentConfig(backbone, eval::MethodKind::kAdapTraj, scales);
      auto r = eval::RunExperiment(dgd, cfg);
      ades.push_back(r.target.ade);
      table.PrintRow({models::BackboneKindName(backbone) + "-AdapTraj", bar.label,
                      eval::FormatFloat(r.target.ade), eval::FormatFloat(r.target.fde)});
    }
    table.PrintSeparator();
    // Render the figure's bars in ASCII (scaled to the worst ADE).
    float worst = 0.0f;
    for (float a : ades) worst = std::max(worst, a);
    for (size_t i = 0; i < bars.size(); ++i) {
      const int len = worst > 0.0f ? static_cast<int>(40.0f * ades[i] / worst) : 0;
      std::printf("  %-20s |%s %s\n", bars[i].label, std::string(len, '#').c_str(),
                  eval::FormatFloat(ades[i]).c_str());
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Fig. 3): under distribution shift, ADE\n"
              "improves as source domains are added (negative transfer mitigated);\n"
              "the i.i.d. SDD bar stays lowest overall.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
