// Figure 4: hyperparameter sensitivity of AdapTraj (PECNet backbone, target
// SDD). Sweeps the six knobs of Alg. 1: domain weight delta, aggregator
// start/end epochs, aggregator ratio sigma, and the low/high learning-rate
// fractions.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

using Mutator = void (*)(eval::ExperimentConfig*, float);

struct Sweep {
  const char* name;       // matches the paper's subplot
  const char* expected;   // paper trend summary
  std::vector<float> values;
  Mutator apply;
};

void Run() {
  PrintBanner("Figure 4", "parameter sensitivity (PECNet-AdapTraj, target SDD)");
  BenchScales scales = GetScales();
  // Sensitivity needs many runs; use a reduced budget per run.
  scales.epochs = std::max(8, scales.epochs / 2);
  scales.eval_samples = std::max(4, scales.eval_samples / 2);

  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));

  const std::vector<Sweep> sweeps = {
      {"(a) domain weight delta",
       "moderate values best; extremes hurt",
       {0.0f, 0.1f, 0.2f, 0.5f, 1.5f},
       [](eval::ExperimentConfig* c, float v) { c->adaptraj_schedule.delta = v; }},
      {"(b) aggregator start fraction (e_start/e_total)",
       "later start (well-trained extractors) helps, then plateaus",
       {0.2f, 0.4f, 0.5f, 0.7f},
       [](eval::ExperimentConfig* c, float v) {
         c->adaptraj_schedule.start_fraction = v;
         c->adaptraj_schedule.end_fraction = std::min(0.9f, v + 0.25f);
       }},
      {"(c) aggregator end fraction (e_end/e_total)",
       "longer aggregator training helps, then plateaus",
       {0.55f, 0.7f, 0.8f, 0.9f},
       [](eval::ExperimentConfig* c, float v) { c->adaptraj_schedule.end_fraction = v; }},
      {"(d) aggregator ratio sigma",
       "larger masking ratio helps up to ~0.5, then flattens/degrades",
       {0.0f, 0.25f, 0.5f, 0.75f, 1.0f},
       [](eval::ExperimentConfig* c, float v) { c->adaptraj_schedule.sigma = v; }},
      {"(e) low lr fraction f_low",
       "too small or too large hurts; middle best",
       {0.05f, 0.2f, 0.5f, 1.0f},
       [](eval::ExperimentConfig* c, float v) { c->adaptraj_schedule.f_low = v; }},
      {"(f) high lr fraction f_high",
       "larger f_high trains the aggregator fully and helps",
       {0.2f, 0.5f, 1.0f},
       [](eval::ExperimentConfig* c, float v) { c->adaptraj_schedule.f_high = v; }},
  };

  for (const Sweep& sweep : sweeps) {
    std::printf("%s  [paper: %s]\n", sweep.name, sweep.expected);
    eval::TablePrinter table({"value", "ADE", "FDE"}, {8, 8, 8});
    table.PrintHeader();
    for (float v : sweep.values) {
      auto cfg = MakeExperimentConfig(models::BackboneKind::kPecnet,
                                      eval::MethodKind::kAdapTraj, scales);
      sweep.apply(&cfg, v);
      auto r = eval::RunExperiment(dgd, cfg);
      table.PrintRow({eval::FormatFloat(v, 2), eval::FormatFloat(r.target.ade),
                      eval::FormatFloat(r.target.fde)});
    }
    std::printf("\n");
  }
  std::printf("Fractions correspond to the paper's absolute epoch counts\n"
              "(e_total=300 there; scaled budgets here).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
