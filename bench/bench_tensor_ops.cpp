// Tensor-engine microbenchmarks: MatMul forward/backward (legacy seed kernel
// vs. the blocked/packed kernels.h path), the fused LSTM step vs. the
// composed-op formulation it replaced (plus a scalar-libm-activation pin for
// the SIMD transcendental ratio), attention forward+backward as the old
// per-batch-slice loop vs. the batched 3-D GEMM path, raw BatchGemm vs a
// Gemm-per-slice loop, transcendental kernel throughput, and Softmax at
// model shapes.
//
// The Legacy*/*Loop/*ScalarAct fixtures replicate the replaced formulations
// exactly — including the per-scalar zero-skip branches, the column-strided
// dA accumulation, the per-scene Slice/Transpose/Concat graph, and the
// scalar std::exp/std::tanh gate loops — so every before/after ratio is
// measured inside one binary.
//
// Emit the perf trajectory with:
//   bench_tensor_ops --benchmark_out=BENCH_tensor_ops.json \
//                    --benchmark_out_format=json

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "data/multi_domain.h"
#include "eval/experiment.h"
#include "serve/inference_engine.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/plan.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adaptraj {
namespace {

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->Normal(0.0f, 1.0f);
  return v;
}

// --- Legacy seed kernels (verbatim algorithmics of the pre-change ops.cpp) ---

void LegacyMatMulForward(const float* pa, const float* pb, float* po, int64_t m,
                         int64_t k, int64_t n) {
  for (int64_t i = 0; i < m * n; ++i) po[i] = 0.0f;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = &pb[p * n];
      float* orow = &po[i * n];
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void LegacyMatMulBackward(const float* pa, const float* pb, const float* gy,
                          float* ga_out, float* gb_out, int64_t m, int64_t k,
                          int64_t n) {
  {
    // dA[m,k] = sum_n dY[m,n] * B[k,n] — note the column-strided B access.
    std::vector<float> ga(m * k, 0.0f);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float g = gy[i * n + j];
        if (g == 0.0f) continue;
        const float* brow = &pb[0];
        for (int64_t p = 0; p < k; ++p) ga[i * k + p] += g * brow[p * n + j];
      }
    }
    for (int64_t i = 0; i < m * k; ++i) ga_out[i] += ga[i];
  }
  {
    // dB[k,n] = sum_m A[m,k] * dY[m,n].
    std::vector<float> gb(k * n, 0.0f);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        float av = pa[i * k + p];
        if (av == 0.0f) continue;
        for (int64_t j = 0; j < n; ++j) gb[p * n + j] += av * gy[i * n + j];
      }
    }
    for (int64_t i = 0; i < k * n; ++i) gb_out[i] += gb[i];
  }
}

// --- MatMul forward+backward: legacy vs kernels::Gemm ------------------------

void BM_MatMulFwdBwd_Legacy(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(42);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> gy = RandomVec(m * n, &rng);
  std::vector<float> y(m * n), ga(m * k, 0.0f), gb(k * n, 0.0f);
  for (auto _ : state) {
    LegacyMatMulForward(a.data(), b.data(), y.data(), m, k, n);
    LegacyMatMulBackward(a.data(), b.data(), gy.data(), ga.data(), gb.data(), m, k, n);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(ga.data());
    benchmark::DoNotOptimize(gb.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2 * m * n * k);
}

void BM_MatMulFwdBwd_Fast(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(42);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> gy = RandomVec(m * n, &rng);
  std::vector<float> y(m * n), ga(m * k, 0.0f), gb(k * n, 0.0f);
  for (auto _ : state) {
    kernels::Gemm(false, false, m, n, k, a.data(), b.data(), y.data(), false);
    kernels::Gemm(false, true, m, k, n, gy.data(), b.data(), ga.data(), true);
    kernels::Gemm(true, false, k, n, m, a.data(), gy.data(), gb.data(), true);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(ga.data());
    benchmark::DoNotOptimize(gb.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2 * m * n * k);
}

// End-to-end autograd MatMul: graph build + forward + full Backward().
void BM_OpsMatMulTrainStep(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(42);
  Tensor a = Tensor::Randn({m, k}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({k, n}, &rng, 1.0f, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = ops::Sum(ops::Square(ops::MatMul(a, b)));
    loss.Backward();
    a.ZeroGrad();
    b.ZeroGrad();
    benchmark::DoNotOptimize(loss.item());
  }
}

// --- LSTM step: composed ops (pre-fusion) vs fused ops -----------------------

struct LstmFixture {
  Tensor x, h0, c0, w_ih, w_hh, bias;
  LstmFixture(int64_t batch, int64_t input, int64_t hidden) {
    Rng rng(7);
    x = Tensor::Randn({batch, input}, &rng, 0.5f, true);
    h0 = Tensor::Randn({batch, hidden}, &rng, 0.5f);
    c0 = Tensor::Randn({batch, hidden}, &rng, 0.5f);
    w_ih = Tensor::Randn({input, 4 * hidden}, &rng, 0.3f, true);
    w_hh = Tensor::Randn({hidden, 4 * hidden}, &rng, 0.3f, true);
    bias = Tensor::Randn({1, 4 * hidden}, &rng, 0.1f, true);
  }
  void ZeroGrads() {
    x.ZeroGrad();
    w_ih.ZeroGrad();
    w_hh.ZeroGrad();
    bias.ZeroGrad();
  }
};

void BM_LstmStepComposed(benchmark::State& state) {
  const int64_t batch = 32, hidden = state.range(0);
  LstmFixture f(batch, hidden, hidden);
  using namespace ops;  // NOLINT(build/namespaces)
  for (auto _ : state) {
    Tensor gates =
        BroadcastAdd(Add(MatMul(f.x, f.w_ih), MatMul(f.h0, f.w_hh)), f.bias);
    Tensor i_gate = Sigmoid(Slice(gates, 1, 0, hidden));
    Tensor f_gate = Sigmoid(Slice(gates, 1, hidden, 2 * hidden));
    Tensor g_gate = Tanh(Slice(gates, 1, 2 * hidden, 3 * hidden));
    Tensor o_gate = Sigmoid(Slice(gates, 1, 3 * hidden, 4 * hidden));
    Tensor c_next = Add(Mul(f_gate, f.c0), Mul(i_gate, g_gate));
    Tensor h_next = Mul(o_gate, Tanh(c_next));
    Tensor loss = Sum(Square(h_next));
    loss.Backward();
    f.ZeroGrads();
    benchmark::DoNotOptimize(loss.item());
  }
}

void BM_LstmStepFused(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  LstmFixture f(32, hidden, hidden);
  using namespace ops;  // NOLINT(build/namespaces)
  for (auto _ : state) {
    Tensor gates = LinearGates(f.x, f.w_ih, f.h0, f.w_hh, f.bias);
    Tensor c_next = LstmCellC(gates, f.c0);
    Tensor h_next = LstmCellH(gates, c_next);
    Tensor loss = Sum(Square(h_next));
    loss.Backward();
    f.ZeroGrads();
    benchmark::DoNotOptimize(loss.item());
  }
}

// The fused LSTM step with the gate activations pinned to scalar libm: the
// in-binary baseline for the SIMD transcendental speedup (everything else —
// GEMMs, graph, buffer pool — is identical to BM_LstmStepFused).
void BM_LstmStepFusedScalarAct(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  LstmFixture f(32, hidden, hidden);
  using namespace ops;  // NOLINT(build/namespaces)
  kernels::SetTranscendentalPath(kernels::TranscendentalPath::kScalar);
  for (auto _ : state) {
    Tensor gates = LinearGates(f.x, f.w_ih, f.h0, f.w_hh, f.bias);
    Tensor c_next = LstmCellC(gates, f.c0);
    Tensor h_next = LstmCellH(gates, c_next);
    Tensor loss = Sum(Square(h_next));
    loss.Backward();
    f.ZeroGrads();
    benchmark::DoNotOptimize(loss.item());
  }
  kernels::SetTranscendentalPath(kernels::TranscendentalPath::kAuto);
}

// --- Raw transcendental throughput: SIMD vs scalar ---------------------------

void BM_ExpKernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  const int64_t n = 32 * 256;
  Rng rng(23);
  std::vector<float> x = RandomVec(n, &rng);
  std::vector<float> y(n);
  kernels::SetTranscendentalPath(simd ? kernels::TranscendentalPath::kSimd
                                      : kernels::TranscendentalPath::kScalar);
  for (auto _ : state) {
    kernels::ExpForward(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  kernels::SetTranscendentalPath(kernels::TranscendentalPath::kAuto);
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TanhKernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  const int64_t n = 32 * 256;
  Rng rng(23);
  std::vector<float> x = RandomVec(n, &rng);
  std::vector<float> y(n);
  kernels::SetTranscendentalPath(simd ? kernels::TranscendentalPath::kSimd
                                      : kernels::TranscendentalPath::kScalar);
  for (auto _ : state) {
    kernels::TanhForward(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  kernels::SetTranscendentalPath(kernels::TranscendentalPath::kAuto);
  state.SetItemsProcessed(state.iterations() * n);
}

// --- Attention: per-batch-slice loop (PR-1 path) vs batched 3-D GEMM ---------
//
// The Loop fixture replicates the pre-BatchMatMul TransformerBlock attention
// exactly: B iterations of Slice/MatMul(Transpose)/Softmax/MatMul stitched
// back together with Concat (~6 graph nodes per scene). The Batched fixture
// is the current path: two BatchMatMul nodes and one 3-D softmax for the
// whole batch.

struct AttentionFixture {
  Tensor q, k, v;  // [B*T, D] leaves, as produced by the q/k/v projections
  int64_t b, t, d;
  AttentionFixture(int64_t b_, int64_t t_, int64_t d_) : b(b_), t(t_), d(d_) {
    Rng rng(17);
    q = Tensor::Randn({b * t, d}, &rng, 0.5f, /*requires_grad=*/true);
    k = Tensor::Randn({b * t, d}, &rng, 0.5f, /*requires_grad=*/true);
    v = Tensor::Randn({b * t, d}, &rng, 0.5f, /*requires_grad=*/true);
  }
  void ZeroGrads() {
    q.ZeroGrad();
    k.ZeroGrad();
    v.ZeroGrad();
  }
};

void BM_AttentionFwdBwd_Loop(benchmark::State& state) {
  AttentionFixture f(state.range(0), state.range(1), state.range(2));
  using namespace ops;  // NOLINT(build/namespaces)
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(f.d));
  for (auto _ : state) {
    std::vector<Tensor> attended_rows;
    attended_rows.reserve(f.b);
    for (int64_t i = 0; i < f.b; ++i) {
      Tensor q_b = Slice(f.q, 0, i * f.t, (i + 1) * f.t);  // [T, D]
      Tensor k_b = Slice(f.k, 0, i * f.t, (i + 1) * f.t);
      Tensor v_b = Slice(f.v, 0, i * f.t, (i + 1) * f.t);
      Tensor scores = MulScalar(MatMul(q_b, Transpose(k_b)), inv_sqrt_d);
      attended_rows.push_back(MatMul(Softmax(scores), v_b));
    }
    Tensor attended = Concat(attended_rows, 0);  // [B*T, D]
    Tensor loss = Sum(Square(attended));
    loss.Backward();
    f.ZeroGrads();
    benchmark::DoNotOptimize(loss.item());
  }
}

void BM_AttentionFwdBwd_Batched(benchmark::State& state) {
  AttentionFixture f(state.range(0), state.range(1), state.range(2));
  using namespace ops;  // NOLINT(build/namespaces)
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(f.d));
  for (auto _ : state) {
    Tensor q3 = Reshape(f.q, {f.b, f.t, f.d});
    Tensor k3 = Reshape(f.k, {f.b, f.t, f.d});
    Tensor v3 = Reshape(f.v, {f.b, f.t, f.d});
    Tensor scores = MulScalar(BatchMatMul(q3, k3, false, true), inv_sqrt_d);
    Tensor attended = BatchMatMul(Softmax(scores), v3);  // [B, T, D]
    Tensor loss = Sum(Square(attended));
    loss.Backward();
    f.ZeroGrads();
    benchmark::DoNotOptimize(loss.item());
  }
}

// --- Raw kernel: single GEMM at model shapes, per dispatch path --------------

/// FLOP-rate counter shared by the GEMM kernel benches: 2*m*n*k flops per
/// product, reported as GFLOP/s so kernel changes are comparable across
/// shapes.
void SetGemmCounters(benchmark::State& state, int64_t products_per_iter,
                     int64_t m, int64_t n, int64_t k) {
  const double flops = 2.0 * static_cast<double>(products_per_iter) *
                       static_cast<double>(m * n * k);
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops, benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
  state.SetItemsProcessed(state.iterations() * products_per_iter * 2 * m * n *
                          k);
}

/// The eager Gemm entry at the model's own shapes; runs on whichever path the
/// dispatcher resolves to (AVX-512 where available, else portable).
void BM_GemmKernel(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(19);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    kernels::Gemm(false, false, m, n, k, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, 1, m, n, k);
}

/// Same shapes with the portable 4x16 kernel forced, so one bench run shows
/// the micro-kernel speedup in-binary (compare against BM_GemmKernel).
void BM_GemmKernelPortable(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(19);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> c(m * n);
  kernels::SetGemmPath(kernels::GemmPath::kPortable);
  for (auto _ : state) {
    kernels::Gemm(false, false, m, n, k, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  kernels::SetGemmPath(kernels::GemmPath::kAuto);
  SetGemmCounters(state, 1, m, n, k);
}

// --- Raw kernel: BatchGemm vs a loop of Gemm calls ---------------------------

void BM_BatchGemmKernel(benchmark::State& state) {
  const int64_t batch = state.range(0), m = state.range(1), k = state.range(2),
                n = state.range(3);
  Rng rng(19);
  std::vector<float> a = RandomVec(batch * m * k, &rng);
  std::vector<float> b = RandomVec(batch * k * n, &rng);
  std::vector<float> c(batch * m * n);
  for (auto _ : state) {
    kernels::BatchGemm(false, true, batch, m, n, k, a.data(), b.data(), c.data(),
                       false);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, batch, m, n, k);
}

void BM_GemmSliceLoopKernel(benchmark::State& state) {
  const int64_t batch = state.range(0), m = state.range(1), k = state.range(2),
                n = state.range(3);
  Rng rng(19);
  std::vector<float> a = RandomVec(batch * m * k, &rng);
  std::vector<float> b = RandomVec(batch * k * n, &rng);
  std::vector<float> c(batch * m * n);
  for (auto _ : state) {
    for (int64_t bi = 0; bi < batch; ++bi) {
      kernels::Gemm(false, true, m, n, k, a.data() + bi * m * k,
                    b.data() + bi * k * n, c.data() + bi * m * n, false);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * m * n * k);
}

// --- Adam update: legacy scalar loop vs kernels::AdamUpdate ------------------

/// Verbatim algorithmics of the pre-change Adam::Step inner loop.
void LegacyAdamUpdate(float* param, const float* grad, float* m, float* v,
                      int64_t n, float lr, float beta1, float beta2, float eps,
                      float weight_decay, float bc1, float bc2) {
  for (int64_t i = 0; i < n; ++i) {
    float g = grad[i];
    if (weight_decay != 0.0f) g += weight_decay * param[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * g;
    v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    param[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

struct AdamFixture {
  std::vector<float> param, grad, m, v;
  explicit AdamFixture(int64_t n) : m(n, 0.0f), v(n, 0.0f) {
    Rng rng(3);
    param = RandomVec(n, &rng);
    grad = RandomVec(n, &rng);
  }
};

void BM_AdamUpdate_Legacy(benchmark::State& state) {
  const int64_t n = state.range(0);
  AdamFixture f(n);
  for (auto _ : state) {
    LegacyAdamUpdate(f.param.data(), f.grad.data(), f.m.data(), f.v.data(), n,
                     1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f, 0.1f, 0.001f);
    benchmark::DoNotOptimize(f.param.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_AdamUpdate_Fast(benchmark::State& state) {
  const int64_t n = state.range(0);
  AdamFixture f(n);
  for (auto _ : state) {
    kernels::AdamUpdate(f.param.data(), f.grad.data(), f.m.data(), f.v.data(), n,
                        1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f, 0.1f, 0.001f);
    benchmark::DoNotOptimize(f.param.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// --- Training epoch: scene-parallel driver at the table-4 workload -----------
//
// One iteration = one epoch of AdapTraj (and the vanilla baseline) training
// at the table-4 shape (H=32, B=32, 3 source domains, 12 batches/epoch cap)
// through core::ParallelTrainer with accum_steps=4. The Arg is the
// ADAPTRAJ_TRAIN_WORKERS count: trained weights are bit-identical across
// Args (the determinism suite asserts this); only wall-clock may differ.
// Real time is the headline (cpu_time is whole-process CPU, i.e. total work
// — flat across worker counts). Wall-clock speedup requires
// >= `workers` physical cores; on a single-core host all Args coincide.

const data::DomainGeneralizationData& TrainBenchData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 20240612;
    auto* d = new data::DomainGeneralizationData(
        data::BuildDomainGeneralizationData(
            {sim::Domain::kEthUcy, sim::Domain::kLcas, sim::Domain::kSyi},
            sim::Domain::kSdd, cfg));
    return d;
  }();
  return *dgd;
}

core::TrainConfig TrainBenchConfig() {
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  tc.max_batches_per_epoch = 12;
  tc.lr = 3e-3f;
  tc.accum_steps = 4;
  tc.seed = 20240612 + 13;
  return tc;
}

models::BackboneConfig TrainBenchBackbone() {
  models::BackboneConfig bb;
  bb.hidden_dim = 32;
  bb.social_dim = 32;
  bb.embed_dim = 16;
  bb.latent_dim = 8;
  return bb;
}

void BM_TrainEpoch_AdapTraj(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto& dgd = TrainBenchData();
  core::AdapTrajConfig acfg;
  acfg.num_source_domains = static_cast<int>(dgd.sources.size());
  core::AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TrainBenchBackbone(),
                              acfg, 99);
  parallel::ConfigureTrainWorkers(workers);
  for (auto _ : state) {
    method.Train(dgd, TrainBenchConfig());
  }
  parallel::ConfigureTrainWorkers(1);
}

void BM_TrainEpoch_Vanilla(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto& dgd = TrainBenchData();
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TrainBenchBackbone(), 99);
  parallel::ConfigureTrainWorkers(workers);
  for (auto _ : state) {
    method.Train(dgd, TrainBenchConfig());
  }
  parallel::ConfigureTrainWorkers(1);
}

// --- Inference: grad-mode vs no-grad Predict, and the serving engine ---------
//
// Method::Predict runs forward-only (NoGradGuard in its body); the GradMode
// fixture forces tape recording so the EXECUTION-MODE delta is measured
// inside one binary at the table-8 batch shape (the 32-scene probe batch).
// Note what this pair does and does not measure: both fixtures run on the
// PR's optimized substrate (fused Affine, bucketed pool, template
// ParallelFor), where Predict is ~92% kernel time — so the mode delta alone
// is ~1.2-1.35x CPU (load-dependent). The full Predict improvement of the
// inference-runtime work vs the pre-change grad path was 1.40 -> 0.62-0.66
// ms CPU (~2.1x) at this shape; the substrate share of that also speeds
// training (see BM_TrainEpoch_*). Each fixture reports the buffer-pool
// reuse rate over its own loop; the structural eager-release advantage of
// no-grad is sharpest from a cold pool (see
// tests/tensor/test_nograd.cpp:EagerReleaseRaisesPoolReuse).

struct PredictFixture {
  core::AdapTrajMethod method;
  data::Batch batch;
  PredictFixture()
      : method(models::BackboneKind::kSeq2Seq, TrainBenchBackbone(),
               [] {
                 core::AdapTrajConfig acfg;
                 acfg.num_source_domains =
                     static_cast<int>(TrainBenchData().sources.size());
                 return acfg;
               }(),
               99) {
    const auto& dgd = TrainBenchData();
    data::SequenceConfig seq_cfg;
    const int64_t probe = std::min<int64_t>(32, dgd.target.test.size());
    std::vector<const data::TrajectorySequence*> seqs;
    for (int64_t i = 0; i < probe; ++i) {
      seqs.push_back(&dgd.target.test.sequences[i]);
    }
    batch = data::MakeBatch(seqs, seq_cfg);
  }
};

void ReportPoolReuse(benchmark::State& state,
                     const internal::BufferPoolStats& before) {
  const auto after = internal::GetBufferPoolStats();
  const int64_t acquires = after.acquires - before.acquires;
  const int64_t hits = after.hits() - before.hits();
  state.counters["pool_reuse_pct"] =
      acquires > 0 ? 100.0 * static_cast<double>(hits) /
                         static_cast<double>(acquires)
                   : 0.0;
}

void BM_PredictGradMode(benchmark::State& state) {
  PredictFixture f;
  Rng rng(1);
  ForcedGradModeGuard forced;  // legacy path: record (and discard) the tape
  const auto before = internal::GetBufferPoolStats();
  for (auto _ : state) {
    Tensor pred = f.method.Predict(f.batch, &rng, /*sample=*/true);
    benchmark::DoNotOptimize(pred.data());
  }
  ReportPoolReuse(state, before);
}

void ReportPlanStats(benchmark::State& state, const plan::CacheStats& s) {
  state.counters["plan_hits"] = static_cast<double>(s.hits);
  state.counters["plan_misses"] = static_cast<double>(s.misses);
  state.counters["plan_fused"] = static_cast<double>(s.fused_steps);
  state.counters["plan_arena_bytes"] = static_cast<double>(s.arena_bytes);
}

// Runs in the default plan mode (ADAPTRAJ_PLAN unset = on): iteration 1
// captures the execution plan, the rest replay it — the served steady state.
// The delta vs BM_PredictEager is the capture-and-replay win; the tracked
// history crosses the introduction of plans, so this number also carries
// the eager->planned transition.
void BM_PredictNoGrad(benchmark::State& state) {
  PredictFixture f;
  Rng rng(1);
  const auto before = internal::GetBufferPoolStats();
  for (auto _ : state) {
    Tensor pred = f.method.Predict(f.batch, &rng, /*sample=*/true);
    benchmark::DoNotOptimize(pred.data());
  }
  ReportPoolReuse(state, before);
  ReportPlanStats(state, f.method.plan_stats());
}

// Plans forced off: the per-call graph-construction cost that capture-and-
// replay removes, at the same batch shape.
void BM_PredictEager(benchmark::State& state) {
  plan::SetMode(plan::Mode::kOff);
  PredictFixture f;
  Rng rng(1);
  for (auto _ : state) {
    Tensor pred = f.method.Predict(f.batch, &rng, /*sample=*/true);
    benchmark::DoNotOptimize(pred.data());
  }
  plan::SetMode(plan::Mode::kAuto);
}

// Pure replay: the plan is captured before the timing loop, so every timed
// call resolves inputs, runs the fused kernels over the planned arena, and
// never touches the graph layer. plan_hits == iterations when healthy.
void BM_PredictPlanned(benchmark::State& state) {
  plan::SetMode(plan::Mode::kOn);
  PredictFixture f;
  Rng rng(1);
  {
    Tensor warm = f.method.Predict(f.batch, &rng, /*sample=*/true);  // capture
    benchmark::DoNotOptimize(warm.data());
  }
  for (auto _ : state) {
    Tensor pred = f.method.Predict(f.batch, &rng, /*sample=*/true);
    benchmark::DoNotOptimize(pred.data());
  }
  ReportPlanStats(state, f.method.plan_stats());
  plan::SetMode(plan::Mode::kAuto);
}

// Serving path: 32 scenes per iteration submitted to an InferenceEngine that
// coalesces Arg(0)-scene batches. items/sec is scenes/sec — the throughput
// metric at batch in {1, 8, 32}.
void BM_InferenceEngine(benchmark::State& state) {
  PredictFixture f;
  const auto& dgd = TrainBenchData();
  const int64_t scenes = std::min<int64_t>(32, dgd.target.test.size());
  serve::InferenceEngineOptions options;
  options.batch_size = static_cast<int>(state.range(0));
  options.seed = 1;
  for (auto _ : state) {
    serve::InferenceEngine engine(&f.method, options);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(static_cast<size_t>(scenes));
    for (int64_t i = 0; i < scenes; ++i) {
      futures.push_back(engine.Submit(dgd.target.test.sequences[i]));
    }
    engine.Drain();
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(state.iterations() * scenes);
}

// Serving throughput with a pre-warmed plan cache: one untimed pass captures
// the full-batch (and padded-tail) plans on the fixture method, then every
// timed batch replays. The delta vs BM_InferenceEngine/8 isolates the
// steady-state serving win; the plan counters come from the method's cache,
// which every per-iteration engine shares.
void BM_InferenceEnginePlanned(benchmark::State& state) {
  plan::SetMode(plan::Mode::kOn);
  PredictFixture f;
  const auto& dgd = TrainBenchData();
  const int64_t scenes = std::min<int64_t>(32, dgd.target.test.size());
  serve::InferenceEngineOptions options;
  options.batch_size = 8;
  options.seed = 1;
  auto run_pass = [&] {
    serve::InferenceEngine engine(&f.method, options);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(static_cast<size_t>(scenes));
    for (int64_t i = 0; i < scenes; ++i) {
      futures.push_back(engine.Submit(dgd.target.test.sequences[i]));
    }
    engine.Drain();
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get().data());
  };
  run_pass();  // untimed capture pass
  for (auto _ : state) run_pass();
  state.SetItemsProcessed(state.iterations() * scenes);
  ReportPlanStats(state, f.method.plan_stats());
  plan::SetMode(plan::Mode::kAuto);
}

// Async serving path under producer concurrency: Arg(0) producer threads
// submit 32 scenes per iteration with explicit slot ids (scene i at slot i,
// so the computed bytes match the single-producer run), then one Drain
// flushes the padded tail. items/sec is scenes/sec; the delta vs
// BM_InferenceEngine/8 is the cost (or win) of contended Submit plus the
// dispatcher handoff at the same batch shape.
void BM_InferenceEngineAsync(benchmark::State& state) {
  PredictFixture f;
  const auto& dgd = TrainBenchData();
  const int64_t scenes = std::min<int64_t>(32, dgd.target.test.size());
  const int producers = static_cast<int>(state.range(0));
  serve::InferenceEngineOptions options;
  options.batch_size = 8;
  options.seed = 1;
  for (auto _ : state) {
    serve::InferenceEngine engine(&f.method, options);
    std::vector<std::future<Tensor>> futures;
    eval::SubmitScenesConcurrently(&engine, dgd.target.test.sequences, scenes,
                                   producers, &futures);
    engine.Drain();
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(state.iterations() * scenes);
}

// Repeat-heavy serving traffic vs the cross-request encoder cache. Arg(0) is
// the repeat percentage of a seeded 32-request schedule (request i resubmits
// a uniformly chosen earlier scene with that probability, else advances to a
// fresh scene); Arg(1) pins the cache on or off. The schedule is fixed per
// case, so the on/off pair serves byte-identical traffic and their
// scenes/sec ratio isolates the cache win; hit_pct reports the realized
// cross-batch hit rate (within-batch duplicates are deduplicated before the
// cache is consulted and do not count as hits).
void BM_EngineRepeatTraffic(benchmark::State& state) {
  PredictFixture f;
  // A dedicated pool with more distinct scenes than the schedule needs:
  // TrainBenchData's 19-scene test split would wrap the fresh stream and
  // manufacture hits at repeat=0.
  static const data::Dataset* scene_pool = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 28;
    cfg.steps_per_scene = 45;
    cfg.seed = 20240612;
    auto d = data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas, sim::Domain::kSyi},
        sim::Domain::kSdd, cfg);
    return new data::Dataset(std::move(d.target.test));
  }();
  const double repeat = static_cast<double>(state.range(0)) / 100.0;
  const bool cached = state.range(1) != 0;
  // Long enough that per-iteration fixed cost (engine construction, thread
  // spawn) is amortized and the measurement is steady-state serving.
  constexpr int64_t kRequests = 256;
  const int64_t pool =
      std::min<int64_t>(kRequests, static_cast<int64_t>(scene_pool->size()));
  std::vector<int64_t> schedule;
  schedule.reserve(kRequests);
  {
    Rng coin(1234);
    int64_t fresh = 0;
    for (int64_t i = 0; i < kRequests; ++i) {
      const bool resubmit =
          fresh > 0 &&
          static_cast<double>(coin.Uniform(0.0f, 1.0f)) < repeat;
      if (resubmit) {
        const int64_t j = std::min<int64_t>(
            fresh - 1, static_cast<int64_t>(
                           static_cast<double>(coin.Uniform(0.0f, 1.0f)) *
                           static_cast<double>(fresh)));
        schedule.push_back(j % pool);
      } else {
        schedule.push_back(fresh++ % pool);
      }
    }
  }
  serve::InferenceEngineOptions options;
  options.batch_size = 8;
  options.seed = 1;
  options.encode_cache =
      cached ? serve::EncodeCacheMode::kOn : serve::EncodeCacheMode::kOff;
  int64_t hits = 0, lookups = 0;
  for (auto _ : state) {
    serve::InferenceEngine engine(&f.method, options);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(static_cast<size_t>(kRequests));
    for (int64_t idx : schedule) {
      futures.push_back(engine.Submit(scene_pool->sequences[static_cast<size_t>(idx)]));
    }
    engine.Drain();
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get().data());
    const auto cache_stats = engine.stats().encode_cache;
    hits += cache_stats.hits;
    lookups += cache_stats.lookups;
  }
  state.SetItemsProcessed(state.iterations() * kRequests);
  state.counters["hit_pct"] =
      lookups > 0 ? 100.0 * static_cast<double>(hits) /
                        static_cast<double>(lookups)
                  : 0.0;
}

// Open-loop Poisson overload at ~2x the engine's measured capacity, with
// admission control shedding. What it gates: the total CPU spent per
// iteration on the overload path — queue management at the bound, shed
// fast-path, deadline-free histogram recording — not the latency of the
// fulfilled requests (Poisson sleeps dominate real_time by design; cpu_time
// with MeasureProcessCPUTime is the meaningful axis). Counters report the
// disposition split and the p99 queue wait from the engine histograms.
void BM_EngineOverload(benchmark::State& state) {
  PredictFixture f;
  const auto& dgd = TrainBenchData();
  data::SequenceConfig seq_cfg;
  // Calibrate capacity once: scenes/sec through the drain-paced engine at
  // batch 8. The offered rate is 2x that — sustained overload.
  static const double capacity = eval::MeasureEngineThroughput(
      f.method, dgd.target.test, seq_cfg, /*batch_size=*/8,
      /*num_scenes=*/32, /*repeats=*/1, /*seed=*/1);
  eval::PoissonLoadOptions load;
  load.arrivals_per_sec = std::max(100.0, 2.0 * capacity);
  load.num_requests = 64;
  load.batch_size = 8;
  load.max_batch_delay_ms = 2;
  load.max_queued_requests = 16;  // kShed: memory bounded, excess shed
  load.seed = 1;

  int64_t fulfilled = 0, shed = 0, expired = 0;
  double p99_wait_ms = 0.0;
  for (auto _ : state) {
    const auto report =
        eval::MeasureEnginePoissonLoad(f.method, dgd.target.test, seq_cfg, load);
    fulfilled += report.fulfilled;
    shed += report.shed;
    expired += report.expired;
    p99_wait_ms = report.queue_wait_p99_ms;
    benchmark::DoNotOptimize(report.achieved_per_sec);
  }
  state.SetItemsProcessed(state.iterations() * load.num_requests);
  const double iters = static_cast<double>(state.iterations());
  state.counters["offered_per_sec"] = load.arrivals_per_sec;
  state.counters["fulfilled"] = static_cast<double>(fulfilled) / iters;
  state.counters["shed"] = static_cast<double>(shed) / iters;
  state.counters["expired"] = static_cast<double>(expired) / iters;
  state.counters["p99_wait_ms"] = p99_wait_ms;
}

// --- Softmax -----------------------------------------------------------------

void BM_SoftmaxFwdBwd(benchmark::State& state) {
  const int64_t rows = 32, cols = state.range(0);
  Rng rng(5);
  Tensor x = Tensor::Randn({rows, cols}, &rng, 1.0f, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = ops::Sum(ops::Square(ops::Softmax(x)));
    loss.Backward();
    x.ZeroGrad();
    benchmark::DoNotOptimize(loss.item());
  }
}

// Acceptance shape [128,64]x[64,128] plus the model shapes (B=32, h in
// {32,64,128} with square-ish weight matrices).
BENCHMARK(BM_MatMulFwdBwd_Legacy)
    ->Args({128, 64, 128})
    ->Args({32, 32, 32})
    ->Args({32, 64, 64})
    ->Args({32, 128, 128});
BENCHMARK(BM_MatMulFwdBwd_Fast)
    ->Args({128, 64, 128})
    ->Args({32, 32, 32})
    ->Args({32, 64, 64})
    ->Args({32, 128, 128});
BENCHMARK(BM_OpsMatMulTrainStep)->Args({128, 64, 128})->Args({32, 64, 64});
BENCHMARK(BM_LstmStepComposed)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_LstmStepFused)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_LstmStepFusedScalarAct)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_SoftmaxFwdBwd)->Arg(32)->Arg(64)->Arg(128);
// Attention at model shapes {B, T, D}: acceptance shape plus a larger scene.
BENCHMARK(BM_AttentionFwdBwd_Loop)->Args({32, 8, 64})->Args({64, 12, 64});
BENCHMARK(BM_AttentionFwdBwd_Batched)->Args({32, 8, 64})->Args({64, 12, 64});
BENCHMARK(BM_GemmKernel)
    ->Args({32, 64, 64})
    ->Args({32, 128, 128})
    ->Args({128, 64, 128});
BENCHMARK(BM_GemmKernelPortable)
    ->Args({32, 64, 64})
    ->Args({32, 128, 128})
    ->Args({128, 64, 128});
BENCHMARK(BM_BatchGemmKernel)->Args({32, 8, 64, 8})->Args({32, 8, 8, 64});
BENCHMARK(BM_GemmSliceLoopKernel)->Args({32, 8, 64, 8})->Args({32, 8, 8, 64});
// Transcendental throughput: Arg(1) = SIMD path, Arg(0) = scalar libm.
BENCHMARK(BM_ExpKernel)->Arg(1)->Arg(0);
BENCHMARK(BM_TanhKernel)->Arg(1)->Arg(0);
// Optimizer update at model-stack parameter counts.
BENCHMARK(BM_AdamUpdate_Legacy)->Arg(1 << 16);
BENCHMARK(BM_AdamUpdate_Fast)->Arg(1 << 16);
// Forward-only inference at the table-8 batch shape: the GradMode fixture is
// the in-binary baseline for the no-grad speedup; pool_reuse_pct shows the
// eager-release delta. BM_InferenceEngine is scenes/sec through the serving
// path at batch in {1, 8, 32}.
BENCHMARK(BM_PredictGradMode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictNoGrad)->Unit(benchmark::kMillisecond);
// Plans forced off vs. forced on (warm cache): the Eager/Planned pair
// brackets BM_PredictNoGrad and isolates the capture-and-replay win from
// machine noise; plan_* counters report cache telemetry.
BENCHMARK(BM_PredictEager)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictPlanned)->Unit(benchmark::kMillisecond);
// Engine benches gate on whole-process CPU: with the async engine, batch
// execution happens on the dispatcher and worker threads, so main-thread
// cpu_time would measure only Submit/Drain bookkeeping.
BENCHMARK(BM_InferenceEngine)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
// Batch-8 serving with a pre-warmed plan cache (replay-only steady state).
BENCHMARK(BM_InferenceEnginePlanned)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
// Async engine at batch 8 with Arg(0) concurrent producer threads.
BENCHMARK(BM_InferenceEngineAsync)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
// Repeat-heavy traffic A/B over the encoder cache: repeat% in {0, 50, 90},
// cache off/on per repeat level. The 90/1-vs-90/0 scenes/sec ratio is the
// tracked cache win at high hit rate.
BENCHMARK(BM_EngineRepeatTraffic)
    ->ArgNames({"repeat", "cache"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({90, 0})
    ->Args({90, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
// SLO-guarded overload: open-loop Poisson at 2x capacity with shedding.
// real_time is dominated by the offered schedule's sleeps; cpu_time (whole
// process) is the gated cost of serving + shedding under overload.
BENCHMARK(BM_EngineOverload)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
// Scene-parallel training epochs; Arg = ADAPTRAJ_TRAIN_WORKERS. real_time is
// the wall-clock headline; cpu_time is whole-process CPU (total work).
BENCHMARK(BM_TrainEpoch_AdapTraj)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainEpoch_Vanilla)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adaptraj

// Custom main: ADAPTRAJ_BENCH_SCALE=fast (the repo-wide bench knob) shortens
// each measurement unless the caller already passed --benchmark_min_time.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_min_time = false;
  for (char* a : args) {
    if (std::strncmp(a, "--benchmark_min_time", 20) == 0) has_min_time = true;
  }
  static char fast_min_time[] = "--benchmark_min_time=0.05";
  const char* scale = std::getenv("ADAPTRAJ_BENCH_SCALE");
  if (scale != nullptr && std::strcmp(scale, "fast") == 0 && !has_min_time) {
    args.push_back(fast_min_time);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // Buffer-pool telemetry over the whole run: reuse rate is the fraction of
  // op-output allocations served from recycled capacity. Stats are per
  // thread and this reads the MAIN thread's pool only: kernel-pool workers
  // write through raw pointers and never allocate, but training-pool
  // workers (BM_TrainEpoch_* with Arg > 1) run whole micro-batch graphs and
  // allocate from their own thread-local pools, which this summary excludes.
  // Tune caps against single-worker runs (e.g. BM_TrainEpoch_AdapTraj/1),
  // where every allocation is on the main thread — that is how the
  // kMaxEntries sweep in buffer_pool.cpp was measured.
  const auto stats = adaptraj::internal::GetBufferPoolStats();
  const double rate = stats.acquires > 0
                          ? 100.0 * static_cast<double>(stats.hits()) /
                                static_cast<double>(stats.acquires)
                          : 0.0;
  std::fprintf(stderr,
               "buffer-pool: hits=%lld misses=%lld releases=%lld "
               "bytes_recycled=%lld reuse=%.1f%%\n",
               static_cast<long long>(stats.hits()),
               static_cast<long long>(stats.misses()),
               static_cast<long long>(stats.releases),
               static_cast<long long>(stats.bytes_recycled), rate);
  benchmark::Shutdown();
  return 0;
}
