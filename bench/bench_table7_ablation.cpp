// Table VII: ablation of AdapTraj's feature types (target SDD, sources
// ETH&UCY + L-CAS + SYI): w/o specific, w/o invariant, full.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct PaperCell {
  core::AdapTrajVariant variant;
  float pecnet[2];
  float lbebm[2];
};

constexpr PaperCell kPaper[] = {
    {core::AdapTrajVariant::kNoSpecific, {0.942f, 1.799f}, {0.842f, 1.728f}},
    {core::AdapTrajVariant::kNoInvariant, {0.927f, 1.671f}, {0.850f, 1.773f}},
    {core::AdapTrajVariant::kFull, {0.911f, 1.670f}, {0.814f, 1.648f}},
};

void Run() {
  PrintBanner("Table VII", "ablation study (target SDD; sources ETH&UCY, L-CAS, SYI)");
  const BenchScales scales = GetScales();
  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));

  eval::TablePrinter table({"Backbone", "Variant", "paper", "measured"},
                           {8, 16, 13, 13});
  table.PrintHeader();
  const models::BackboneKind backbones[] = {models::BackboneKind::kPecnet,
                                            models::BackboneKind::kLbebm};
  for (int bb = 0; bb < 2; ++bb) {
    for (const PaperCell& cell : kPaper) {
      auto cfg =
          MakeExperimentConfig(backbones[bb], eval::MethodKind::kAdapTraj, scales);
      cfg.variant = cell.variant;
      auto r = eval::RunExperiment(dgd, cfg);
      const float* paper = bb == 0 ? cell.pecnet : cell.lbebm;
      table.PrintRow({bb == 0 ? "PECNet" : "LBEBM",
                      core::AdapTrajVariantName(cell.variant),
                      eval::FormatAdeFde(paper[0], paper[1]),
                      eval::FormatAdeFde(r.target.ade, r.target.fde)});
    }
    table.PrintSeparator();
  }
  std::printf("\nExpected shape: removing either feature type hurts; the full\n"
              "model ('ours') is best on both backbones.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
