// Design-choice ablation: the sequential model of the individual mobility
// layer (Eq. 2). The paper allows LSTM or Transformer encoders; this bench
// compares both instantiations of the Seq2Seq backbone under vanilla and
// AdapTraj training (target SDD).

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

void Run() {
  PrintBanner("Ablation C", "individual mobility encoder (Eq. 2): LSTM vs Transformer");
  BenchScales scales = GetScales();
  scales.epochs = scales.epochs * 2 / 3;
  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));

  eval::TablePrinter table({"Encoder", "Method", "ADE", "FDE"}, {13, 12, 8, 8});
  table.PrintHeader();
  for (auto encoder : {models::EncoderKind::kLstm, models::EncoderKind::kTransformer}) {
    for (auto method : {eval::MethodKind::kVanilla, eval::MethodKind::kAdapTraj}) {
      auto cfg = MakeExperimentConfig(models::BackboneKind::kSeq2Seq, method, scales);
      cfg.backbone_config.encoder = encoder;
      cfg.backbone_config.transformer_blocks = 1;
      auto r = eval::RunExperiment(dgd, cfg);
      table.PrintRow({encoder == models::EncoderKind::kLstm ? "LSTM" : "Transformer",
                      eval::MethodKindName(method), eval::FormatFloat(r.target.ade),
                      eval::FormatFloat(r.target.fde)});
    }
    table.PrintSeparator();
  }
  std::printf("\nBoth encoders are drop-in instantiations of Eq. 2; the AdapTraj\n"
              "framework applies unchanged on top of either.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
