// Design-choice ablation (DESIGN.md Sec. 6): the simulator's passing-side
// convention - the neighbor-driven domain-SPECIFIC behaviour. With the
// convention ablated (bias scale 0), domains differ only in individual
// dynamics, so the gap between AdapTraj (which models specific neighbor
// features) and the neighbor-blind Counter baseline should shrink.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

void Run() {
  PrintBanner("Ablation B", "passing-side convention (domain-specific neighbor signal)");
  BenchScales scales = GetScales();
  scales.epochs = scales.epochs * 2 / 3;

  eval::TablePrinter table({"Corpus", "Method", "ADE", "FDE"}, {22, 12, 8, 8});
  table.PrintHeader();
  for (float bias_scale : {1.0f, 0.0f}) {
    data::CorpusConfig corpus = MakeCorpusConfig(scales);
    corpus.passing_bias_scale = bias_scale;
    auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                   sim::Domain::kSdd, corpus);
    const char* label = bias_scale == 1.0f ? "with conventions" : "conventions ablated";
    for (auto method : {eval::MethodKind::kCounter, eval::MethodKind::kAdapTraj}) {
      auto cfg = MakeExperimentConfig(models::BackboneKind::kPecnet, method, scales);
      auto r = eval::RunExperiment(dgd, cfg);
      table.PrintRow({label, eval::MethodKindName(method),
                      eval::FormatFloat(r.target.ade), eval::FormatFloat(r.target.fde)});
    }
    table.PrintSeparator();
  }
  std::printf("\nExpected: the AdapTraj-vs-Counter gap narrows when the\n"
              "neighbor-driven domain-specific signal is removed from the world.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
