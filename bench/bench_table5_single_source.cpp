// Table V: single-source domain generalization. Each of ETH&UCY / L-CAS /
// SYI serves alone as the source; evaluation is on unseen SDD.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct PaperRow {
  eval::MethodKind method;
  // ADE/FDE per source: ETH&UCY, L-CAS, SYI.
  float v[6];
};

constexpr PaperRow kPaperPecnet[] = {
    {eval::MethodKind::kVanilla, {1.203f, 1.877f, 1.901f, 2.468f, 1.343f, 2.093f}},
    {eval::MethodKind::kCounter, {1.223f, 1.878f, 1.557f, 2.476f, 1.354f, 2.329f}},
    {eval::MethodKind::kCausalMotion, {2.408f, 1.895f, 2.475f, 2.494f, 2.443f, 2.068f}},
    {eval::MethodKind::kAdapTraj, {1.121f, 1.743f, 1.573f, 2.381f, 1.307f, 2.099f}},
};

constexpr PaperRow kPaperLbebm[] = {
    {eval::MethodKind::kVanilla, {0.852f, 1.798f, 1.689f, 3.200f, 1.087f, 2.193f}},
    {eval::MethodKind::kCounter, {1.265f, 2.728f, 2.012f, 3.786f, 1.379f, 2.965f}},
    {eval::MethodKind::kCausalMotion, {2.653f, 4.747f, 2.629f, 4.320f, 2.583f, 3.745f}},
    {eval::MethodKind::kAdapTraj, {0.849f, 1.763f, 1.483f, 2.898f, 1.056f, 2.120f}},
};

void Run() {
  PrintBanner("Table V", "single-source domain generalization, evaluated on SDD");
  BenchScales scales = GetScales();
  scales.epochs = scales.epochs * 2 / 3;
  const std::vector<sim::Domain> sources = {sim::Domain::kEthUcy, sim::Domain::kLcas,
                                            sim::Domain::kSyi};

  std::vector<data::DomainGeneralizationData> corpora;
  for (sim::Domain source : sources) {
    corpora.push_back(data::BuildDomainGeneralizationData({source}, sim::Domain::kSdd,
                                                          MakeCorpusConfig(scales)));
  }

  eval::TablePrinter table({"Backbone", "Method", "ETH&UCY", "L-CAS", "SYI", "Average"},
                           {8, 22, 13, 13, 13, 13});
  table.PrintHeader();
  const models::BackboneKind backbones[] = {models::BackboneKind::kPecnet,
                                            models::BackboneKind::kLbebm};
  for (int bb = 0; bb < 2; ++bb) {
    const PaperRow* paper = bb == 0 ? kPaperPecnet : kPaperLbebm;
    const char* bb_name = bb == 0 ? "PECNet" : "LBEBM";
    for (int mi = 0; mi < 4; ++mi) {
      const PaperRow& p = paper[mi];
      const std::string method_name = eval::MethodKindName(p.method);
      std::vector<std::string> prow = {bb_name, method_name + " (paper)"};
      float pa = 0.0f, pf = 0.0f;
      for (int s = 0; s < 3; ++s) {
        prow.push_back(eval::FormatAdeFde(p.v[2 * s], p.v[2 * s + 1]));
        pa += p.v[2 * s] / 3.0f;
        pf += p.v[2 * s + 1] / 3.0f;
      }
      prow.push_back(eval::FormatAdeFde(pa, pf));
      table.PrintRow(prow);

      std::vector<std::string> mrow = {bb_name, method_name + " (measured)"};
      float ma = 0.0f, mf = 0.0f;
      for (size_t s = 0; s < corpora.size(); ++s) {
        auto cfg = MakeExperimentConfig(backbones[bb], p.method, scales);
        auto r = eval::RunExperiment(corpora[s], cfg);
        mrow.push_back(eval::FormatAdeFde(r.target.ade, r.target.fde));
        ma += r.target.ade / 3.0f;
        mf += r.target.fde / 3.0f;
      }
      mrow.push_back(eval::FormatAdeFde(ma, mf));
      table.PrintRow(mrow);
      table.PrintSeparator();
    }
  }
  std::printf("\nExpected shape: AdapTraj remains the best learning method even\n"
              "with a single source domain; CausalMotion trails.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
