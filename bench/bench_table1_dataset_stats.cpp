// Table I: statistical analysis of the four trajectory domains.
// Prints the paper's statistics (real datasets) next to the statistics of
// the calibrated synthetic domains.

#include "bench_util.h"

#include "data/dataset.h"

namespace adaptraj {
namespace bench {
namespace {

struct PaperStats {
  sim::Domain domain;
  int sequences;
  float num[2];  // avg, std
  float vx[2], vy[2], ax[2], ay[2];
};

constexpr PaperStats kPaper[] = {
    {sim::Domain::kEthUcy, 3856, {9.09f, 10.01f}, {0.279f, 0.170f}, {0.090f, 0.070f},
     {0.027f, 0.027f}, {0.027f, 0.024f}},
    {sim::Domain::kLcas, 2499, {7.88f, 3.23f}, {0.104f, 0.078f}, {0.041f, 0.024f},
     {0.044f, 0.028f}, {0.044f, 0.025f}},
    {sim::Domain::kSyi, 5152, {35.17f, 20.81f}, {0.306f, 0.063f}, {1.087f, 0.185f},
     {0.082f, 0.018f}, {0.339f, 0.062f}},
    {sim::Domain::kSdd, 35634, {17.82f, 15.12f}, {0.295f, 0.204f}, {0.187f, 0.156f},
     {0.057f, 0.042f}, {0.064f, 0.053f}},
};

std::string AvgStd(float avg, float stddev) {
  return eval::FormatFloat(avg, 3) + "/" + eval::FormatFloat(stddev, 3);
}

void Run() {
  PrintBanner("Table I", "dataset statistics (avg/std per trajectory characteristic)");
  const BenchScales scales = GetScales();
  data::SequenceConfig seq_cfg;

  eval::TablePrinter table(
      {"Domain", "", "# seq", "num", "v(x)", "v(y)", "a(x)", "a(y)"},
      {8, 9, 7, 13, 13, 13, 13, 13});
  table.PrintHeader();
  for (const PaperStats& p : kPaper) {
    table.PrintRow({sim::DomainName(p.domain), "paper", std::to_string(p.sequences),
                    AvgStd(p.num[0], p.num[1]), AvgStd(p.vx[0], p.vx[1]),
                    AvgStd(p.vy[0], p.vy[1]), AvgStd(p.ax[0], p.ax[1]),
                    AvgStd(p.ay[0], p.ay[1])});
    auto scenes = sim::GenerateScenes(sim::SpecForDomain(p.domain),
                                      scales.num_scenes * 2, scales.steps_per_scene,
                                      scales.seed);
    auto s = data::ComputeDomainStats(scenes, seq_cfg, p.domain);
    table.PrintRow({"", "measured", std::to_string(s.num_sequences),
                    AvgStd(s.avg_num, s.std_num), AvgStd(s.avg_vx, s.std_vx),
                    AvgStd(s.avg_vy, s.std_vy), AvgStd(s.avg_ax, s.std_ax),
                    AvgStd(s.avg_ay, s.std_ay)});
    table.PrintSeparator();
  }
  std::printf(
      "\nSequence counts are intentionally smaller (synthetic corpora are\n"
      "scaled for CPU training); per-step velocity/acceleration statistics\n"
      "and their cross-domain ratios are the calibration targets.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
