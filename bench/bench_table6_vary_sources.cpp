// Table VI: PECNet vs PECNet-AdapTraj across source-domain configurations,
// including the i.i.d. SDD -> SDD setting. Evaluated on SDD.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct SourceSet {
  const char* label;
  std::vector<sim::Domain> domains;
  float paper_vanilla[2];
  float paper_adaptraj[2];
};

void Run() {
  PrintBanner("Table VI", "performance on various numbers of source domains (SDD target)");
  BenchScales scales = GetScales();

  const std::vector<SourceSet> sets = {
      {"SDD", {sim::Domain::kSdd}, {0.592f, 1.051f}, {0.585f, 1.052f}},
      {"ETH&UCY", {sim::Domain::kEthUcy}, {1.203f, 1.877f}, {1.121f, 1.743f}},
      {"ETH&UCY, L-CAS",
       {sim::Domain::kEthUcy, sim::Domain::kLcas},
       {1.240f, 1.956f},
       {1.072f, 1.729f}},
  };

  eval::TablePrinter table({"Method", "Source Domains", "paper", "measured"},
                           {18, 22, 13, 13});
  table.PrintHeader();
  for (auto method : {eval::MethodKind::kVanilla, eval::MethodKind::kAdapTraj}) {
    for (const SourceSet& set : sets) {
      auto dgd = data::BuildDomainGeneralizationData(set.domains, sim::Domain::kSdd,
                                                     MakeCorpusConfig(scales));
      auto cfg = MakeExperimentConfig(models::BackboneKind::kPecnet, method, scales);
      auto r = eval::RunExperiment(dgd, cfg);
      const float* paper = method == eval::MethodKind::kVanilla ? set.paper_vanilla
                                                                : set.paper_adaptraj;
      const std::string name = method == eval::MethodKind::kVanilla
                                   ? "PECNet"
                                   : "PECNet-AdapTraj";
      table.PrintRow({name, set.label, eval::FormatAdeFde(paper[0], paper[1]),
                      eval::FormatAdeFde(r.target.ade, r.target.fde)});
    }
    table.PrintSeparator();
  }
  std::printf("\nExpected shape: AdapTraj matches vanilla in-domain (SDD source) and\n"
              "pulls ahead under distribution shift; adding L-CAS helps AdapTraj\n"
              "while hurting vanilla (negative transfer).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
