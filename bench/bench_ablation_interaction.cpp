// Design-choice ablation (DESIGN.md Sec. 6): the interaction-layer mechanism.
// The paper's Eq. 3 allows pooling, attention or graph aggregation for phi;
// this bench compares the three implemented mechanisms on the main setting
// (PECNet-vanilla, target SDD). Not a paper table - an ablation of this
// reproduction's default (attention).

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

void Run() {
  PrintBanner("Ablation A", "neighbor interaction mechanism (Eq. 3 instantiations)");
  BenchScales scales = GetScales();
  scales.epochs = scales.epochs * 2 / 3;
  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));

  eval::TablePrinter table({"Interaction", "ADE", "FDE", "infer-ms"}, {14, 8, 8, 10});
  table.PrintHeader();
  for (auto kind : {models::InteractionKind::kAttention,
                    models::InteractionKind::kMeanPool,
                    models::InteractionKind::kMaxPool}) {
    auto cfg = MakeExperimentConfig(models::BackboneKind::kPecnet,
                                    eval::MethodKind::kVanilla, scales);
    cfg.backbone_config.interaction = kind;
    auto r = eval::RunExperiment(dgd, cfg);
    table.PrintRow({models::InteractionKindName(kind), eval::FormatFloat(r.target.ade),
                    eval::FormatFloat(r.target.fde),
                    eval::FormatFloat(static_cast<float>(r.inference_seconds * 1e3), 2)});
  }
  std::printf("\nAll three mechanisms are drop-in instantiations of the Sec. II-C\n"
              "interaction layer; attention is the library default.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
