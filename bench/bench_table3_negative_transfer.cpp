// Table III: negative transfer. Single-source domain-generalization methods
// (Counter, CausalMotion) get WORSE as more source domains are pooled in,
// evaluated on the unseen SDD domain.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct SourceSet {
  const char* label;
  std::vector<sim::Domain> domains;
  float paper_counter[2];
  float paper_causal[2];
};

void Run() {
  PrintBanner("Table III", "negative transfer with increasing source domains");
  BenchScales scales = GetScales();
  scales.epochs = scales.epochs * 2 / 3;

  const std::vector<SourceSet> sets = {
      {"ETH&UCY", {sim::Domain::kEthUcy}, {1.48f, 3.03f}, {1.56f, 3.28f}},
      {"ETH&UCY, L-CAS",
       {sim::Domain::kEthUcy, sim::Domain::kLcas},
       {1.57f, 3.17f},
       {1.85f, 3.50f}},
      {"ETH&UCY, L-CAS, SYI",
       {sim::Domain::kEthUcy, sim::Domain::kLcas, sim::Domain::kSyi},
       {1.77f, 3.68f},
       {1.89f, 3.68f}},
  };

  eval::TablePrinter table({"Source Domains", "Counter", "CausalMotion"}, {22, 28, 28});
  table.PrintHeader();
  for (const SourceSet& set : sets) {
    auto dgd = data::BuildDomainGeneralizationData(set.domains, sim::Domain::kSdd,
                                                   MakeCorpusConfig(scales));
    auto counter_cfg =
        MakeExperimentConfig(models::BackboneKind::kPecnet, eval::MethodKind::kCounter,
                             scales);
    auto causal_cfg = MakeExperimentConfig(models::BackboneKind::kPecnet,
                                           eval::MethodKind::kCausalMotion, scales);
    auto r_counter = eval::RunExperiment(dgd, counter_cfg);
    auto r_causal = eval::RunExperiment(dgd, causal_cfg);
    table.PrintRow(
        {set.label,
         "paper " + eval::FormatAdeFde(set.paper_counter[0], set.paper_counter[1], 2),
         "paper " + eval::FormatAdeFde(set.paper_causal[0], set.paper_causal[1], 2)});
    table.PrintRow({"",
                    "measured " + eval::FormatAdeFde(r_counter.target.ade,
                                                     r_counter.target.fde, 2),
                    "measured " + eval::FormatAdeFde(r_causal.target.ade,
                                                     r_causal.target.fde, 2)});
    table.PrintSeparator();
  }
  std::printf("\nExpected shape: both methods degrade (or fail to improve) as\n"
              "source domains are added - the negative-transfer phenomenon that\n"
              "motivates AdapTraj's explicit specific-feature modeling.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
