// Table IV: main comparison under multi-source domain generalization.
// Each dataset serves as the unseen target; the other three are sources.
// Rows: {PECNet, LBEBM} x {vanilla, Counter, CausalMotion, AdapTraj}.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct PaperRow {
  const char* method;
  // ADE/FDE per target: SDD, ETH&UCY, L-CAS, SYI.
  float v[8];
};

constexpr PaperRow kPaperPecnet[] = {
    {"vanilla", {0.948f, 1.785f, 0.426f, 0.617f, 0.282f, 0.383f, 1.113f, 1.983f}},
    {"Counter", {1.245f, 1.806f, 0.547f, 0.583f, 0.419f, 0.346f, 2.367f, 4.800f}},
    {"CausalMotion", {2.394f, 1.847f, 1.578f, 0.613f, 0.702f, 0.378f, 6.138f, 2.070f}},
    {"AdapTraj", {0.911f, 1.670f, 0.425f, 0.572f, 0.256f, 0.336f, 1.067f, 1.883f}},
};

constexpr PaperRow kPaperLbebm[] = {
    {"vanilla", {0.829f, 1.721f, 0.340f, 0.665f, 0.288f, 0.519f, 1.319f, 2.663f}},
    {"Counter", {1.387f, 2.956f, 0.617f, 1.261f, 0.485f, 0.946f, 2.464f, 5.182f}},
    {"CausalMotion", {2.639f, 4.544f, 1.800f, 3.043f, 0.810f, 1.414f, 6.691f, 9.643f}},
    {"AdapTraj", {0.814f, 1.648f, 0.278f, 0.527f, 0.237f, 0.410f, 1.026f, 1.909f}},
};

void Run() {
  PrintBanner("Table IV", "multi-source domain generalization, leave-one-domain-out");
  const BenchScales scales = GetScales();
  const std::vector<sim::Domain> targets = {sim::Domain::kSdd, sim::Domain::kEthUcy,
                                            sim::Domain::kLcas, sim::Domain::kSyi};
  const eval::MethodKind methods[] = {eval::MethodKind::kVanilla,
                                      eval::MethodKind::kCounter,
                                      eval::MethodKind::kCausalMotion,
                                      eval::MethodKind::kAdapTraj};
  const models::BackboneKind backbones[] = {models::BackboneKind::kPecnet,
                                            models::BackboneKind::kLbebm};

  // Pre-build one corpus per target (shared across methods for fairness).
  std::vector<data::DomainGeneralizationData> corpora;
  for (sim::Domain target : targets) {
    corpora.push_back(data::BuildDomainGeneralizationData(
        SourcesExcluding(target), target, MakeCorpusConfig(scales)));
  }

  eval::TablePrinter table({"Backbone", "Method", "SDD", "ETH&UCY", "L-CAS", "SYI",
                            "Average"},
                           {8, 18, 13, 13, 13, 13, 13});
  table.PrintHeader();
  for (int bb = 0; bb < 2; ++bb) {
    const PaperRow* paper = bb == 0 ? kPaperPecnet : kPaperLbebm;
    const char* bb_name = bb == 0 ? "PECNet" : "LBEBM";
    for (int mi = 0; mi < 4; ++mi) {
      // Paper reference row.
      const PaperRow& p = paper[mi];
      float pa = 0.0f;
      float pf = 0.0f;
      std::vector<std::string> prow = {bb_name, std::string(p.method) + " (paper)"};
      for (int t = 0; t < 4; ++t) {
        prow.push_back(eval::FormatAdeFde(p.v[2 * t], p.v[2 * t + 1]));
        pa += p.v[2 * t] / 4.0f;
        pf += p.v[2 * t + 1] / 4.0f;
      }
      prow.push_back(eval::FormatAdeFde(pa, pf));
      table.PrintRow(prow);

      // Measured row.
      float ma = 0.0f;
      float mf = 0.0f;
      std::vector<std::string> mrow = {bb_name, std::string(p.method) + " (measured)"};
      for (size_t t = 0; t < targets.size(); ++t) {
        auto cfg = MakeExperimentConfig(backbones[bb], methods[mi], scales);
        auto result = eval::RunExperiment(corpora[t], cfg);
        mrow.push_back(eval::FormatAdeFde(result.target.ade, result.target.fde));
        ma += result.target.ade / 4.0f;
        mf += result.target.fde / 4.0f;
      }
      mrow.push_back(eval::FormatAdeFde(ma, mf));
      table.PrintRow(mrow);
      table.PrintSeparator();
    }
  }
  std::printf(
      "\nExpected shape: AdapTraj best on average; Counter and CausalMotion\n"
      "degrade relative to vanilla (negative transfer / discarded neighbors).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
