// Table VIII: inference time per method (google-benchmark).
//
// The paper reports 3-31 ms per inference across methods; the key shapes are
// (1) LBEBM slower than PECNet (latent energy sampling), and (2) AdapTraj
// adding only a small overhead over its vanilla backbone.

#include <future>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "serve/inference_engine.h"

namespace adaptraj {
namespace bench {
namespace {

struct TimingSetup {
  std::unique_ptr<core::Method> method;
  data::Batch batch;
};

TimingSetup MakeSetup(models::BackboneKind backbone, eval::MethodKind method) {
  BenchScales scales = GetScales();
  scales.num_scenes = 2;
  scales.steps_per_scene = 45;
  auto cfg = MakeExperimentConfig(backbone, method, scales);
  // Inference cost does not depend on training; use an untrained model.
  TimingSetup setup;
  setup.method = eval::MakeMethod(cfg, /*num_source_domains=*/3);

  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));
  data::SequenceConfig seq_cfg;
  const int64_t probe = std::min<int64_t>(32, dgd.target.test.size());
  std::vector<const data::TrajectorySequence*> seqs;
  for (int64_t i = 0; i < probe; ++i) seqs.push_back(&dgd.target.test.sequences[i]);
  setup.batch = data::MakeBatch(seqs, seq_cfg);
  return setup;
}

void BM_Inference(benchmark::State& state) {
  const auto backbone = static_cast<models::BackboneKind>(state.range(0));
  const auto method = static_cast<eval::MethodKind>(state.range(1));
  TimingSetup setup = MakeSetup(backbone, method);
  Rng rng(1);
  for (auto _ : state) {
    Tensor pred = setup.method->Predict(setup.batch, &rng, /*sample=*/true);
    benchmark::DoNotOptimize(pred.data());
  }
  state.SetLabel(models::BackboneKindName(backbone) + "-" + eval::MethodKindName(method));
}

// Serving throughput: scenes/sec through the batched InferenceEngine at the
// coalescing widths of the serving ladder (batch in {1, 8, 32}). items/sec
// in the report is the headline number.
void BM_EngineThroughput(benchmark::State& state) {
  const auto backbone = static_cast<models::BackboneKind>(state.range(0));
  const auto method = static_cast<eval::MethodKind>(state.range(1));
  const int batch_size = static_cast<int>(state.range(2));
  TimingSetup setup = MakeSetup(backbone, method);

  BenchScales scales = GetScales();
  scales.num_scenes = 2;
  scales.steps_per_scene = 45;
  auto dgd = data::BuildDomainGeneralizationData(SourcesExcluding(sim::Domain::kSdd),
                                                 sim::Domain::kSdd,
                                                 MakeCorpusConfig(scales));
  const int64_t scenes = std::min<int64_t>(32, dgd.target.test.size());
  serve::InferenceEngineOptions options;
  options.batch_size = batch_size;
  options.seed = 1;
  for (auto _ : state) {
    serve::InferenceEngine engine(setup.method.get(), options);
    std::vector<std::future<Tensor>> futures;
    for (int64_t i = 0; i < scenes; ++i) {
      futures.push_back(engine.Submit(dgd.target.test.sequences[i]));
    }
    engine.Drain();
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().data());
  }
  state.SetItemsProcessed(state.iterations() * scenes);
  state.SetLabel(models::BackboneKindName(backbone) + "-" +
                 eval::MethodKindName(method) + "-b" + std::to_string(batch_size));
}

void RegisterAll() {
  for (auto backbone : {models::BackboneKind::kPecnet, models::BackboneKind::kLbebm}) {
    for (auto method :
         {eval::MethodKind::kVanilla, eval::MethodKind::kCounter,
          eval::MethodKind::kCausalMotion, eval::MethodKind::kAdapTraj}) {
      benchmark::RegisterBenchmark("BM_Inference", BM_Inference)
          ->Args({static_cast<int64_t>(backbone), static_cast<int64_t>(method)})
          ->Unit(benchmark::kMillisecond);
    }
  }
  // The serving sweep only needs one method per backbone family: AdapTraj on
  // PECNet (the paper's headline pairing) at the three coalescing widths.
  for (int64_t batch : {1, 8, 32}) {
    benchmark::RegisterBenchmark("BM_EngineThroughput", BM_EngineThroughput)
        ->Args({static_cast<int64_t>(models::BackboneKind::kPecnet),
                static_cast<int64_t>(eval::MethodKind::kAdapTraj), batch})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main(int argc, char** argv) {
  std::printf(
      "Table VIII - inference time. Paper (seconds): PECNet vanilla 0.003,\n"
      "Counter 0.004, CausalMotion 0.003, AdapTraj 0.007; LBEBM vanilla 0.027,\n"
      "Counter 0.031, CausalMotion 0.027, AdapTraj 0.030.\n"
      "Expected shape: LBEBM an order slower than PECNet (Langevin sampling);\n"
      "AdapTraj adds a small constant overhead; all within real-time budgets.\n\n");
  adaptraj::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
