// Shared configuration for the table/figure benchmark binaries.
//
// Every bench prints the paper's reference values next to the measured ones
// so shape fidelity (orderings, trends) can be checked at a glance. Scale is
// controlled by the ADAPTRAJ_BENCH_SCALE environment variable:
//   fast     - minimal corpora/epochs, smoke-test the harness (~seconds/table)
//   standard - default; preserves the paper's orderings (~minutes/table)
//   full     - larger corpora/epochs for tighter numbers

#ifndef ADAPTRAJ_BENCH_BENCH_UTIL_H_
#define ADAPTRAJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/experiment.h"
#include "eval/table.h"

namespace adaptraj {
namespace bench {

/// Workload scales for a bench run.
struct BenchScales {
  int num_scenes = 4;        // scenes simulated per domain
  int steps_per_scene = 60;  // recorded steps per scene
  int epochs = 64;           // training epochs per experiment
  int max_batches = 12;      // batches per epoch cap
  int eval_samples = 20;     // best-of-K
  uint64_t seed = 20240612;
};

/// Reads ADAPTRAJ_BENCH_SCALE (fast | standard | full).
inline BenchScales GetScales() {
  BenchScales s;
  const char* env = std::getenv("ADAPTRAJ_BENCH_SCALE");
  const std::string scale = env == nullptr ? "standard" : env;
  if (scale == "fast") {
    s.num_scenes = 2;
    s.steps_per_scene = 45;
    s.epochs = 12;
    s.max_batches = 6;
    s.eval_samples = 8;
  } else if (scale == "full") {
    s.num_scenes = 8;
    s.steps_per_scene = 80;
    s.epochs = 96;
    s.max_batches = 16;
  }
  return s;
}

/// Default experiment configuration for a (backbone, method) cell.
inline eval::ExperimentConfig MakeExperimentConfig(models::BackboneKind backbone,
                                                   eval::MethodKind method,
                                                   const BenchScales& scales) {
  eval::ExperimentConfig cfg;
  cfg.backbone = backbone;
  cfg.method = method;
  cfg.backbone_config.hidden_dim = 32;
  cfg.backbone_config.social_dim = 32;
  cfg.backbone_config.embed_dim = 16;
  cfg.backbone_config.latent_dim = 8;
  cfg.backbone_config.langevin_steps = 4;
  cfg.train.epochs = scales.epochs;
  cfg.train.max_batches_per_epoch = scales.max_batches;
  cfg.train.lr = 3e-3f;
  cfg.train.batch_size = 32;
  cfg.train.seed = scales.seed + 13;
  cfg.eval_samples = scales.eval_samples;
  cfg.seed = scales.seed + 29;
  return cfg;
}

/// Corpus config matching the bench scales.
inline data::CorpusConfig MakeCorpusConfig(const BenchScales& scales) {
  data::CorpusConfig c;
  c.num_scenes = scales.num_scenes;
  c.steps_per_scene = scales.steps_per_scene;
  c.seed = scales.seed;
  return c;
}

/// Leave-one-out source list for a target domain.
inline std::vector<sim::Domain> SourcesExcluding(sim::Domain target) {
  std::vector<sim::Domain> sources;
  for (sim::Domain d : sim::AllDomains()) {
    if (d != target) sources.push_back(d);
  }
  return sources;
}

/// Prints the standard bench banner.
inline void PrintBanner(const char* table, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", table, description);
  std::printf("Paper: AdapTraj (ICDE 2024). Values are ADE/FDE unless noted.\n");
  std::printf("'paper' rows are the published numbers (real datasets);\n");
  std::printf("'measured' rows come from the synthetic reproduction. Compare\n");
  std::printf("orderings and trends, not absolute magnitudes.\n");
  std::printf("==============================================================\n\n");
}

}  // namespace bench
}  // namespace adaptraj

#endif  // ADAPTRAJ_BENCH_BENCH_UTIL_H_
