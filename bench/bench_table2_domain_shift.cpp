// Table II: performance decline of existing methods under domain shift.
// Models trained on SDD vs on ETH&UCY, both evaluated on SDD test data.

#include "bench_util.h"

namespace adaptraj {
namespace bench {
namespace {

struct Cell {
  const char* column;
  models::BackboneKind backbone;
  eval::MethodKind method;
  float paper_same[2];   // trained on SDD -> SDD (ADE, FDE)
  float paper_cross[2];  // trained on ETH&UCY -> SDD
};

// Paper columns: LBEBM, PECNet (vanilla backbones), Counter and CausalMotion
// (learning methods, evaluated on their PECNet backbone).
constexpr Cell kCells[] = {
    {"LBEBM", models::BackboneKind::kLbebm, eval::MethodKind::kVanilla,
     {0.55f, 0.98f}, {0.85f, 1.80f}},
    {"PECNet", models::BackboneKind::kPecnet, eval::MethodKind::kVanilla,
     {0.59f, 1.05f}, {1.20f, 1.88f}},
    {"Counter", models::BackboneKind::kPecnet, eval::MethodKind::kCounter,
     {1.34f, 2.93f}, {1.48f, 3.03f}},
    {"CausalMotion", models::BackboneKind::kPecnet, eval::MethodKind::kCausalMotion,
     {1.35f, 2.89f}, {1.56f, 3.28f}},
};

void Run() {
  PrintBanner("Table II", "performance decline when training domain != test domain");
  BenchScales scales = GetScales();
  // Single-source runs converge faster; trim the budget.
  scales.epochs = scales.epochs * 2 / 3;

  auto same = data::BuildDomainGeneralizationData({sim::Domain::kSdd}, sim::Domain::kSdd,
                                                  MakeCorpusConfig(scales));
  auto cross = data::BuildDomainGeneralizationData({sim::Domain::kEthUcy},
                                                   sim::Domain::kSdd,
                                                   MakeCorpusConfig(scales));

  eval::TablePrinter table({"Source", "Method", "paper", "measured"}, {10, 14, 13, 13});
  table.PrintHeader();
  for (const Cell& cell : kCells) {
    auto cfg = MakeExperimentConfig(cell.backbone, cell.method, scales);
    auto r_same = eval::RunExperiment(same, cfg);
    table.PrintRow({"SDD", cell.column,
                    eval::FormatAdeFde(cell.paper_same[0], cell.paper_same[1], 2),
                    eval::FormatAdeFde(r_same.target.ade, r_same.target.fde, 2)});
    auto r_cross = eval::RunExperiment(cross, cfg);
    table.PrintRow({"ETH&UCY", cell.column,
                    eval::FormatAdeFde(cell.paper_cross[0], cell.paper_cross[1], 2),
                    eval::FormatAdeFde(r_cross.target.ade, r_cross.target.fde, 2)});
    table.PrintSeparator();
  }
  std::printf("\nExpected shape: every method degrades when trained on ETH&UCY\n"
              "instead of SDD (cross-domain row > same-domain row).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptraj

int main() {
  adaptraj::bench::Run();
  return 0;
}
