#!/usr/bin/env python3
"""Self-test for tools/determinism_lint.py against tools/lint_fixtures/.

Covers, per ISSUE 10: every rule firing on a deliberately violating fixture,
every allow-directive suppression (both placements), the false-positive
guard fixture, the path allowlists against real tree files, and the
default-scan contract (fixtures skipped, repo clean).

Run: python3 tools/test_determinism_lint.py
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import determinism_lint as lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "lint_fixtures")


def rules_found(path):
    findings, errors = lint.scan_file(path)
    if errors:
        raise AssertionError("scan errors: %r" % errors)
    return [rule for (_, _, rule, _) in findings]


class ViolationFixtures(unittest.TestCase):
    """Every rule must fire on its violating construct."""

    def test_cpp_rules_all_fire(self):
        got = rules_found(os.path.join(FIXTURES, "violations.cpp"))
        self.assertEqual(got.count("unordered-iteration"), 2,
                         "map and set range-for loops")
        self.assertEqual(got.count("raw-rand"), 2, "rand() and random_device")
        self.assertEqual(got.count("wall-clock"), 3,
                         "steady_clock, system_clock, time(nullptr)")
        self.assertEqual(got.count("float-accumulate"), 1)

    def test_py_rules_all_fire(self):
        got = rules_found(os.path.join(FIXTURES, "violations.py"))
        self.assertEqual(got.count("py-raw-rand"), 4,
                         "urandom, uuid4, random.random, random.choice")
        self.assertEqual(got.count("py-wall-clock"), 2,
                         "time.time and datetime.now")

    def test_every_documented_rule_is_exercised(self):
        exercised = set(rules_found(os.path.join(FIXTURES, "violations.cpp")) +
                        rules_found(os.path.join(FIXTURES, "violations.py")))
        self.assertEqual(exercised, set(lint.RULES),
                         "a rule exists that no fixture exercises")


class AllowDirectives(unittest.TestCase):
    """Suppressed fixtures carry the same constructs plus directives and must
    scan clean; the directives must be the reason why."""

    def test_cpp_suppressions_hold(self):
        self.assertEqual(rules_found(os.path.join(FIXTURES, "suppressed.cpp")),
                         [])

    def test_py_suppressions_hold(self):
        self.assertEqual(rules_found(os.path.join(FIXTURES, "suppressed.py")),
                         [])

    def test_directive_rule_name_must_match(self):
        # A directive for a DIFFERENT rule must not suppress this line's
        # finding — allow() is per-rule, not per-line-blanket.
        table = lint.allows(
            ["x = now();  // det-lint: allow(raw-rand, wrong rule on purpose)"])
        self.assertIn("raw-rand", table.get(1, {}))
        self.assertNotIn("wall-clock", table.get(1, {}))

    def test_directive_covers_own_and_next_line_only(self):
        table = lint.allows(["// det-lint: allow(wall-clock, reason)", "", ""])
        self.assertIn("wall-clock", table.get(1, {}))
        self.assertIn("wall-clock", table.get(2, {}))
        self.assertNotIn(3, table)


class FalsePositiveGuards(unittest.TestCase):
    def test_clean_fixture_is_clean(self):
        self.assertEqual(rules_found(os.path.join(FIXTURES, "clean.cpp")), [])

    def test_strings_and_comments_do_not_fire(self):
        stripped = lint.strip_cpp(
            ['int x = 0;  // rand() in a comment',
             'const char* s = "time(nullptr) in a string";',
             '/* std::accumulate( */ int y = 1;'])
        joined = "\n".join(stripped)
        self.assertNotIn("rand", joined)
        self.assertNotIn("time(nullptr)", joined)
        self.assertNotIn("accumulate", joined)

    def test_py_strings_and_comments_do_not_fire(self):
        stripped = lint.strip_py(
            ['x = 1  # time.time() in a comment',
             's = "os.urandom(8) in a string"',
             '"""random.random()', 'time.time()"""', 'y = 2'])
        joined = "\n".join(stripped)
        self.assertNotIn("urandom", joined)
        self.assertNotIn("time.time", joined)
        self.assertNotIn("random.random", joined)

    def test_nested_template_args_resolve_to_the_declared_name(self):
        names = lint.unordered_names(
            "std::unordered_map<std::string, std::vector<int>> deep_;")
        self.assertEqual(names, {"deep_"})


class PathAllowlists(unittest.TestCase):
    """The real tree's sanctioned sites must pass WITHOUT directives."""

    def test_serve_wall_clock_is_sanctioned(self):
        # inference_engine.cpp reads the clock for deadlines/latency — the
        # canonical SLO-telemetry path the wall-clock allowlist exists for.
        path = os.path.join(lint.REPO_ROOT, "src/serve/inference_engine.cpp")
        with open(path) as f:
            self.assertIn("::now(", f.read(),
                          "expected the engine to read the clock; if that "
                          "moved, point this test at the new telemetry site")
        self.assertNotIn("wall-clock", rules_found(path))

    def test_rng_header_is_sanctioned_for_raw_rand(self):
        path = os.path.join(lint.REPO_ROOT, "src/tensor/rng.h")
        self.assertNotIn("raw-rand", rules_found(path))


class DefaultScan(unittest.TestCase):
    def test_fixtures_excluded_by_default_and_tree_clean(self):
        # The injected violations live only under lint_fixtures/, so the
        # default scan (which skips that directory) must exit 0...
        self.assertEqual(lint.main([]), 0)

    def test_explicit_fixture_path_fails_the_lint(self):
        # ...while explicitly pointing the lint at the fixtures must exit 1:
        # the ISSUE's "an injected violation fails it" acceptance check.
        self.assertEqual(lint.main([FIXTURES]), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
