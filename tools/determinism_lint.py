#!/usr/bin/env python3
"""AST-light determinism lint: nondeterminism hazards the generic tools miss.

The repo's reproduction contract is bit-identical outputs across thread
counts, worker counts, and cache on/off (see tensor/parallel.h). Clang's
thread-safety analysis and TSan guard the LOCK discipline behind that
contract; this lint guards the SOURCE discipline — the handful of C++ and
Python constructs that silently smuggle nondeterminism into an
output-producing path without any race at all:

  unordered-iteration   Range-for over a std::unordered_{map,set,multimap,
                        multiset}: bucket order is a function of hash
                        seeding, insertion history, and libstdc++ version,
                        so any value produced by such a loop can differ run
                        to run. Lookups/finds are fine; ITERATION in
                        anything that feeds an output is not. (Ordered
                        re-collection first, or a std::map, is the fix.)
  raw-rand              rand()/srand()/std::random_device/drand48: unseeded
                        or globally-seeded randomness outside the blessed
                        seeded generator (tensor/rng.h, the one file allowed
                        to name these). Every random draw must come from an
                        Rng seeded by the experiment config.
  wall-clock            steady/system_clock::now, time(), gettimeofday,
                        clock_gettime: a timestamp feeding anything but SLO
                        telemetry makes outputs time-dependent. Allowed in
                        the telemetry paths — src/serve/ (latency histograms,
                        deadlines, watchdog), src/eval/ (throughput
                        measurement), tests/ and bench/ (harness timing) —
                        and nowhere else.
  float-accumulate      std::accumulate over floats: accumulation order is
                        an implementation detail the caller cannot pin, and
                        refactors (parallelization, pairwise rewrites)
                        change the rounding. Deterministic reductions live
                        in tensor/kernels.cpp (the one file allowed).
  py-raw-rand           Python: os.urandom, uuid.uuid4, random.* draws,
                        numpy.random.* — tools that transform committed
                        artifacts (baselines, schemas) must be pure
                        functions of their inputs.
  py-wall-clock         Python: time.time()/datetime.now() feeding tool
                        output.

Escape hatch — when a flagged construct is genuinely safe, suppress it ON
THE SAME LINE or the LINE ABOVE with an auditable reason:

    // det-lint: allow(wall-clock, cache-warmup timing is log-only)
    #  det-lint: allow(py-raw-rand, jitter seed printed into the report)

The rule name must match and the reason must be non-empty; the directive is
a grep-able audit surface, not a blanket off-switch.

Usage:
    determinism_lint.py                  # scan the repo (src tests bench
                                         # examples tools), exit 1 on findings
    determinism_lint.py PATH...          # scan specific files/dirs (explicit
                                         # paths may point into the fixtures)
    determinism_lint.py --list-rules

Scanning is line-based over comment- and string-stripped source (an
"AST-light" scanner: no compiler needed, multi-line statements may escape
it — CI pairs it with the compiled analyses precisely because each catches
what the other cannot). tools/lint_fixtures/ holds deliberately violating
self-test inputs and is skipped unless explicitly listed.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_ROOTS = ("src", "tests", "bench", "examples", "tools")
FIXTURE_DIR = "lint_fixtures"
SKIP_DIRS = {".git", "build", "__pycache__", "third_party", "_deps"}

CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")
PY_EXTS = (".py",)

# rule name -> (description, tuple of path prefixes where the construct is
# ALLOWED without a directive; matched against the repo-relative path).
RULES = {
    "unordered-iteration": (
        "range-for over an unordered container (bucket order is not stable)",
        (),
    ),
    "raw-rand": (
        "rand()/random_device outside the blessed seeded RNG",
        ("src/tensor/rng.h",),
    ),
    "wall-clock": (
        "wall-clock read outside the SLO-telemetry/measurement paths",
        ("src/serve/", "src/eval/", "tests/", "bench/"),
    ),
    "float-accumulate": (
        "std::accumulate outside the deterministic-reduction kernels",
        ("src/tensor/kernels.cpp",),
    ),
    "py-raw-rand": (
        "Python nondeterministic randomness in a tool",
        (),
    ),
    "py-wall-clock": (
        "Python wall-clock read in a tool",
        (),
    ),
}

ALLOW_RE = re.compile(r"det-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*,\s*([^)]+?)\s*\)")

RAW_RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bdrand48\b|\blrand48\b")
WALL_CLOCK_RE = re.compile(
    r"\b\w*[Cc]lock\w*\s*::\s*now\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd\s*::\s*clock\s*\(")
FLOAT_ACCUMULATE_RE = re.compile(r"\b(?:std\s*::\s*)?accumulate\s*\(")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
PY_RAW_RAND_RE = re.compile(
    r"\bos\.urandom\s*\(|\buuid\.uuid4\s*\(|\bsecrets\."
    r"|\brandom\.(?:random|randint|randrange|choice|choices|shuffle|sample"
    r"|uniform|getrandbits)\s*\("
    r"|\bnp\.random\.|\bnumpy\.random\.")
PY_WALL_CLOCK_RE = re.compile(
    r"\btime\.time(?:_ns)?\s*\(|\bdatetime\.now\s*\(|datetime\.datetime\.now\s*\(")


def strip_cpp(lines):
    """Blanks comments and string/char literals, preserving line structure so
    findings keep their line numbers. det-lint directives are read from the
    RAW lines before this runs."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                    elif line[i] == quote:
                        i += 1
                        break
                    else:
                        i += 1
                res.append(quote + quote)
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def strip_py(lines):
    """Blanks # comments, ordinary strings, and triple-quoted blocks."""
    out = []
    triple = None  # the active triple-quote delimiter, if any
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            if triple:
                end = line.find(triple, i)
                if end < 0:
                    i = n
                else:
                    triple = None
                    i = end + 3
                continue
            c = line[i]
            if c == "#":
                break
            if line.startswith(('"""', "'''"), i):
                triple = line[i] * 3
                i += 3
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                    elif line[i] == quote:
                        i += 1
                        break
                    else:
                        i += 1
                res.append(quote + quote)
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def unordered_names(stripped_text):
    """Names declared with an unordered container type, found by balanced
    angle-bracket scanning (template args nest: unordered_map<K,
    list<V>::iterator>)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped_text):
        depth = 1
        i = m.end()
        while i < len(stripped_text) and depth > 0:
            if stripped_text[i] == "<":
                depth += 1
            elif stripped_text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        tail = re.match(r"[&*\s]*([A-Za-z_]\w*)", stripped_text[i:])
        if tail and tail.group(1) not in ("const",):
            names.add(tail.group(1))
    return names


def iter_findings_cpp(rel, raw_lines, stripped):
    names = unordered_names("\n".join(stripped))
    range_for = None
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        # `for (decl : expr)` where expr's trailing identifier is a known
        # unordered container (possibly behind obj./ptr-> qualification).
        range_for = re.compile(
            r"for\s*\([^()]*:\s*[\w.()\->]*\b(?:%s)\s*\)" % alt)
    for idx, line in enumerate(stripped):
        lineno = idx + 1
        if range_for and range_for.search(line):
            yield ("unordered-iteration", lineno)
        if RAW_RAND_RE.search(line):
            yield ("raw-rand", lineno)
        if WALL_CLOCK_RE.search(line):
            yield ("wall-clock", lineno)
        if FLOAT_ACCUMULATE_RE.search(line):
            yield ("float-accumulate", lineno)


def iter_findings_py(rel, raw_lines, stripped):
    for idx, line in enumerate(stripped):
        lineno = idx + 1
        if PY_RAW_RAND_RE.search(line):
            yield ("py-raw-rand", lineno)
        if PY_WALL_CLOCK_RE.search(line):
            yield ("py-wall-clock", lineno)


def allows(raw_lines):
    """Line -> {rule: reason} map of directives, each covering its own line
    and the line below (so the directive can sit in a comment above)."""
    table = {}
    for idx, line in enumerate(raw_lines):
        for m in ALLOW_RE.finditer(line):
            rule, reason = m.group(1), m.group(2)
            for covered in (idx + 1, idx + 2):
                table.setdefault(covered, {})[rule] = reason
    return table


def scan_file(path):
    """Returns (findings, errors) for one file; findings are
    (rel_path, lineno, rule, snippet)."""
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [], ["%s: unreadable: %s" % (rel, e)]
    if path.endswith(CPP_EXTS):
        stripped = strip_cpp(raw_lines)
        found = iter_findings_cpp(rel, raw_lines, stripped)
    elif path.endswith(PY_EXTS):
        stripped = strip_py(raw_lines)
        found = iter_findings_py(rel, raw_lines, stripped)
    else:
        return [], []
    allowed = allows(raw_lines)
    findings = []
    for rule, lineno in found:
        prefixes = RULES[rule][1]
        if any(rel.startswith(p) for p in prefixes):
            continue
        if rule in allowed.get(lineno, {}):
            continue
        snippet = raw_lines[lineno - 1].strip()
        findings.append((rel, lineno, rule, snippet))
    return findings, []


def collect_files(paths, include_fixtures):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIRS and not d.startswith("build")
                and (include_fixtures or d != FIXTURE_DIR))
            for name in sorted(filenames):
                if name.endswith(CPP_EXTS + PY_EXTS):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Determinism lint; see the module docstring.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: the repo roots)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, (desc, allowed) in RULES.items():
            where = ", ".join(allowed) if allowed else "nowhere"
            print("%-22s %s (allowed without directive: %s)" % (rule, desc, where))
        return 0

    if args.paths:
        paths = args.paths
        include_fixtures = True  # explicit paths mean the caller knows
    else:
        paths = [os.path.join(REPO_ROOT, r) for r in DEFAULT_ROOTS
                 if os.path.isdir(os.path.join(REPO_ROOT, r))]
        include_fixtures = False

    findings = []
    errors = []
    for path in collect_files(paths, include_fixtures):
        f, e = scan_file(path)
        findings.extend(f)
        errors.extend(e)

    for rel, lineno, rule, snippet in sorted(findings):
        print("%s:%d: [%s] %s\n    %s" % (rel, lineno, rule, RULES[rule][0],
                                          snippet))
    for err in errors:
        print(err, file=sys.stderr)
    if findings or errors:
        print("\ndeterminism lint: %d finding(s). Fix, or suppress a "
              "genuinely safe site with\n  // det-lint: allow(<rule>, <reason>)"
              % len(findings), file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
