// Self-test fixture: constructs that LOOK like violations but must not fire
// — the lint's false-positive guard rail. tools/test_determinism_lint.py
// asserts this file scans clean with zero directives.
#include <ctime>
#include <map>
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> lookup_only;
std::map<std::string, int> ordered;

int Clean(const std::string& key) {
  // Point lookups and membership tests on unordered containers are fine;
  // only ITERATION is order-sensitive.
  auto it = lookup_only.find(key);
  int sum = it == lookup_only.end() ? 0 : it->second;
  // Ordered containers iterate deterministically.
  for (const auto& kv : ordered) sum += kv.second;
  // Inside comments and strings nothing fires: rand(), time(nullptr),
  // steady_clock::now(), std::accumulate(...)
  const char* doc = "call rand() or steady_clock::now() -- just a string";
  // Identifiers merely CONTAINING the pattern names don't fire:
  int localtime_cache = 0;   // `time(` must not match inside "localtime_..."
  int operand = 1;           // `rand` must not match inside "operand"
  struct tm when;            // localtime_r(&now, &when) would fire; this doesn't
  (void)doc; (void)when;
  return sum + localtime_cache + operand;
}
