// Self-test fixture: the same constructs as violations.cpp, each carrying a
// det-lint allow directive. The lint must report NOTHING for this file —
// both directive placements (same line, line above) are exercised, for
// every rule. tools/test_determinism_lint.py depends on this file scanning
// clean.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <numeric>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<std::string, int> counts;
std::unordered_set<int> seen;

int Suppressed() {
  int sum = 0;
  // det-lint: allow(unordered-iteration, order-insensitive sum, result folded commutatively)
  for (const auto& kv : counts) sum += kv.second;
  for (int v : seen) sum += v;  // det-lint: allow(unordered-iteration, order-insensitive sum)
  // det-lint: allow(raw-rand, fixture exercising the line-above placement)
  sum += rand();
  std::random_device rd;  // det-lint: allow(raw-rand, entropy only seeds a log tag)
  // det-lint: allow(wall-clock, log-only timestamp, never reaches an output)
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::system_clock::now();  // det-lint: allow(wall-clock, log-only timestamp)
  time_t epoch = time(nullptr);  // det-lint: allow(wall-clock, log-only timestamp)
  std::vector<float> xs(8, 1.0f);
  // det-lint: allow(float-accumulate, fixed-order serial reduction, single thread)
  float total = std::accumulate(xs.begin(), xs.end(), 0.0f);
  (void)rd; (void)t0; (void)t1; (void)epoch;
  return sum + static_cast<int>(total);
}
