# Self-test fixture for the Python rules of tools/determinism_lint.py.
# Never imported; the fixtures directory is excluded from the default scan.
import datetime
import os
import random
import time
import uuid


def violations():
    a = os.urandom(8)                      # py-raw-rand
    b = uuid.uuid4()                       # py-raw-rand
    c = random.random()                    # py-raw-rand
    d = random.choice([1, 2, 3])           # py-raw-rand
    t0 = time.time()                       # py-wall-clock
    t1 = datetime.datetime.now()           # py-wall-clock
    return a, b, c, d, t0, t1
