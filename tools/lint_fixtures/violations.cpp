// Self-test fixture for tools/determinism_lint.py: every C++ rule fires
// exactly where tools/test_determinism_lint.py expects. NOT compiled; kept
// out of the default scan (the fixtures directory is skipped unless listed
// explicitly). Edit in lockstep with the test's expected line numbers.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <numeric>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<std::string, int> counts;
std::unordered_set<int> seen;

int Violations() {
  int sum = 0;
  for (const auto& kv : counts) sum += kv.second;            // unordered-iteration
  for (int v : seen) sum += v;                               // unordered-iteration
  sum += rand();                                             // raw-rand
  std::random_device rd;                                     // raw-rand
  auto t0 = std::chrono::steady_clock::now();                // wall-clock
  auto t1 = std::chrono::system_clock::now();                // wall-clock
  time_t epoch = time(nullptr);                              // wall-clock
  std::vector<float> xs(8, 1.0f);
  float total = std::accumulate(xs.begin(), xs.end(), 0.0f); // float-accumulate
  (void)rd; (void)t0; (void)t1; (void)epoch;
  return sum + static_cast<int>(total);
}
