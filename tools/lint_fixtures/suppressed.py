# Self-test fixture: every Python-rule construct suppressed by a directive.
# Must scan clean; both directive placements are exercised.
import datetime
import os
import random
import time
import uuid


def suppressed():
    # det-lint: allow(py-raw-rand, nonce for a throwaway temp-file name)
    a = os.urandom(8)
    b = uuid.uuid4()  # det-lint: allow(py-raw-rand, report id, not an output value)
    c = random.random()  # det-lint: allow(py-raw-rand, jitter on a retry sleep)
    # det-lint: allow(py-raw-rand, jitter on a retry sleep)
    d = random.choice([1, 2, 3])
    t0 = time.time()  # det-lint: allow(py-wall-clock, wall-time budget for the runner)
    # det-lint: allow(py-wall-clock, report header timestamp, log-only)
    t1 = datetime.datetime.now()
    return a, b, c, d, t0, t1
