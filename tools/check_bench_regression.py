#!/usr/bin/env python3
"""Diff a fresh bench_tensor_ops JSON against the committed baseline.

Usage:
    check_bench_regression.py BASELINE.json NEW.json [--threshold 0.30]
    check_bench_regression.py --json-schema BENCH.json   # validate shape only

Compares cpu_time for the tracked kernel benchmarks and fails (exit 1) when
any of them regresses by more than the threshold (default 30%). Because the
committed baseline and the CI runner are different machines, raw nanoseconds
are first normalized by the median new/baseline ratio across ALL shared
benchmarks: a uniformly slower (or faster) machine shifts every benchmark by
the same factor and cancels out, while a kernel that regressed relative to
the rest of the suite sticks out.

A TRACKED benchmark present in the baseline but absent from the new run is a
FAILURE: a silently dropped gate (renamed bench, crashed fixture, stale
filter) would otherwise look exactly like a pass forever. A tracked
benchmark present only in the new run is skipped with a warning — it has no
baseline yet; regenerate BENCH_tensor_ops.json to start gating it. Untracked
benchmarks never gate in either direction, so adding or retiring baselines
(Legacy*/*Loop/*ScalarAct exist to measure ratios, not to be fast) does not
break CI.
"""

import argparse
import json
import statistics
import sys

# Name prefixes of the kernels whose performance this repo guarantees.
TRACKED_PREFIXES = (
    "BM_MatMulFwdBwd_Fast",
    "BM_AttentionFwdBwd_Batched",
    "BM_BatchGemmKernel",
    # The single-product GEMM micro-kernel at model shapes, on the dispatched
    # (AVX-512 where available) path and on the forced-portable path. Both
    # are tracked: the dispatched entry guards the micro-kernel itself, the
    # portable entry guards the fallback every non-AVX-512 host serves from.
    "BM_GemmKernel/",
    "BM_GemmKernelPortable/",
    "BM_LstmStepFused/",  # trailing slash: excludes the ScalarAct baseline
    "BM_SoftmaxFwdBwd",
    "BM_AdamUpdate_Fast",
    # Forward-only inference at the table-8 batch shape and the serving
    # engine's scenes/sec path. BM_PredictGradMode is the in-binary baseline
    # for the ratio and is deliberately NOT tracked. The BM_InferenceEngine
    # prefix tracks both the Drain-paced path (BM_InferenceEngine/{1,8,32})
    # and the multi-producer async path (BM_InferenceEngineAsync/{1,4});
    # both gate on whole-process CPU (execution lives on the dispatcher and
    # worker threads, not the benchmark main thread). BM_PredictPlanned is
    # the warm execution-plan replay path (tensor/plan.h) — pure steady-state
    # serving cost; BM_PredictEager is its plans-off baseline and, like
    # GradMode, deliberately NOT tracked. The BM_InferenceEngine prefix also
    # picks up BM_InferenceEnginePlanned (warm-cache serving at batch 8).
    "BM_PredictNoGrad",
    "BM_PredictPlanned",
    "BM_InferenceEngine",
    # Scene-parallel training epochs. cpu_time here is whole-process CPU
    # (MeasureProcessCPUTime), i.e. total work per epoch — the right gate:
    # it is stable across worker counts and core counts, while real_time
    # (the wall-clock speedup headline) depends on how many physical cores
    # the runner has.
    "BM_TrainEpoch_",
    # Open-loop Poisson overload through the SLO-guarded engine (admission
    # control shedding at ~2x capacity). Gates the overload path's total
    # CPU per offered request: queue management, shedding, histograms.
    "BM_EngineOverload",
    # Repeat-heavy serving through the cross-request encoder cache
    # (serve/encode_cache.h): the same seeded schedule with the cache off and
    # on at repeat in {0, 50, 90}%. Gates both sides — the off rows pin the
    # uncached serving path, the repeat:0/cache:1 row bounds the all-miss
    # overhead (key hashing + lookups that never hit), and repeat:90/cache:1
    # carries the >=2x cache win this PR's headline claims.
    "BM_EngineRepeatTraffic",
)


class BenchFormatError(Exception):
    """BENCH JSON that is not a well-formed google-benchmark report. Raised
    with a message naming the file and every problem found, so a truncated
    upload or a hand-edited baseline fails with 'what is wrong where' instead
    of the raw KeyError this script used to die with."""


def validate_doc(doc, path):
    """Returns the list of schema problems in a parsed BENCH document (empty
    when it matches the subset of google-benchmark's --benchmark_format=json
    output this checker consumes)."""
    problems = []
    if not isinstance(doc, dict):
        return ["%s: top level must be a JSON object, got %s"
                % (path, type(doc).__name__)]
    benches = doc.get("benchmarks")
    if benches is None:
        return ["%s: missing the \"benchmarks\" array — is this really a "
                "google-benchmark JSON report?" % path]
    if not isinstance(benches, list):
        return ["%s: \"benchmarks\" must be an array, got %s"
                % (path, type(benches).__name__)]
    for i, bench in enumerate(benches):
        where = "%s: benchmarks[%d]" % (path, i)
        if not isinstance(bench, dict):
            problems.append("%s: must be an object, got %s"
                            % (where, type(bench).__name__))
            continue
        run_type = bench.get("run_type", "iteration")
        is_median = (run_type == "aggregate"
                     and bench.get("aggregate_name") == "median")
        if run_type == "iteration" and "name" not in bench:
            problems.append("%s: iteration row without a \"name\"" % where)
        if is_median and "run_name" not in bench:
            problems.append("%s: median aggregate without a \"run_name\""
                            % where)
        if run_type == "iteration" or is_median:
            cpu = bench.get("cpu_time")
            label = bench.get("name", bench.get("run_name", "<unnamed>"))
            if cpu is None:
                problems.append("%s (%s): missing \"cpu_time\""
                                % (where, label))
            elif not isinstance(cpu, (int, float)) or isinstance(cpu, bool):
                problems.append("%s (%s): \"cpu_time\" must be a number, got "
                                "%r" % (where, label, cpu))
    return problems


def load_doc(path):
    """Parses and schema-checks one BENCH JSON file; raises BenchFormatError
    with every problem rather than surfacing raw json/KeyError tracebacks."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFormatError("%s: cannot read: %s" % (path, e)) from e
    except json.JSONDecodeError as e:
        raise BenchFormatError(
            "%s: not valid JSON (%s) — truncated bench run or a non-JSON "
            "format flag?" % (path, e)) from e
    problems = validate_doc(doc, path)
    if problems:
        raise BenchFormatError("\n".join(problems))
    return doc


def load_times(path):
    """Maps benchmark name -> cpu_time ns. When a run used
    --benchmark_repetitions, the median aggregate overrides the per-repetition
    samples (that's the noise-robust value CI should gate on)."""
    doc = load_doc(path)
    times = {}
    for bench in doc["benchmarks"]:
        if bench.get("run_type", "iteration") == "iteration":
            times.setdefault(bench["name"], float(bench["cpu_time"]))
    for bench in doc["benchmarks"]:
        if (bench.get("run_type") == "aggregate"
                and bench.get("aggregate_name") == "median"):
            times[bench["run_name"]] = float(bench["cpu_time"])
    return times


def is_tracked(name):
    return any(name.startswith(p) for p in TRACKED_PREFIXES)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("new", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional cpu_time regression (default 0.30)")
    parser.add_argument("--json-schema", metavar="BENCH_JSON",
                        help="validate one BENCH JSON file's shape and exit "
                             "(no baseline comparison)")
    args = parser.parse_args()

    if args.json_schema:
        try:
            doc = load_doc(args.json_schema)
        except BenchFormatError as e:
            print(e, file=sys.stderr)
            return 1
        print("%s: valid BENCH JSON (%d benchmark rows)"
              % (args.json_schema, len(doc["benchmarks"])))
        return 0
    if not args.baseline or not args.new:
        parser.error("baseline and new JSON files are required "
                     "(or use --json-schema FILE)")

    try:
        base = load_times(args.baseline)
        new = load_times(args.new)
    except BenchFormatError as e:
        print(e, file=sys.stderr)
        return 1

    shared = [n for n in base if n in new and base[n] > 0]
    if not shared:
        print("No shared benchmarks between baseline and new run.", file=sys.stderr)
        return 1
    # Machine-speed normalization: the median ratio over the whole suite is
    # the best single estimate of "how much faster/slower is this machine".
    scale = statistics.median(new[n] / base[n] for n in shared)
    print(f"machine-speed scale (median new/baseline over {len(shared)} "
          f"benchmarks): {scale:.2f}x\n")

    failures = []
    missing = []
    for name in sorted(base):
        if not is_tracked(name):
            continue
        if name not in new:
            missing.append(name)
            print(f"MISSING  {name}: tracked in the baseline but absent from "
                  f"the new run (FAILING)")
            continue
        raw = new[name] / base[name] if base[name] > 0 else float("inf")
        ratio = raw / scale
        status = "OK"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            failures.append((name, ratio))
        print(f"{status:10s}{name}: {base[name]:.0f} -> {new[name]:.0f} ns "
              f"({ratio:.2f}x baseline after scaling)")
    for name in sorted(set(new) - set(base)):
        if is_tracked(name):
            print(f"WARNING  {name}: tracked but has no baseline entry — "
                  f"skipped; regenerate BENCH_tensor_ops.json to gate it")

    failed = False
    if missing:
        print(f"\n{len(missing)} tracked benchmark(s) missing from the new run "
              f"— a gate silently stopped running:", file=sys.stderr)
        for name in missing:
            print(f"  {name}: present in the baseline, absent from the new "
                  f"JSON (renamed? filtered out? fixture crashed?)",
                  file=sys.stderr)
        failed = True
    if failures:
        print(f"\n{len(failures)} tracked benchmark(s) regressed by more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline cpu_time", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("\nAll tracked benchmarks present and within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
